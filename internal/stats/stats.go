// Package stats provides the descriptive-statistics substrate used across
// the Sieve reproduction: means, variances, coefficients of variation,
// weighted arithmetic and harmonic means, percentiles and histograms.
//
// All functions operate on float64 slices and are deterministic. Functions
// that are undefined on empty input return 0 rather than NaN so that callers
// aggregating over possibly-empty strata do not have to special-case; the
// *Checked variants report validity explicitly where the distinction matters.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Sum returns the sum of xs using Kahan compensated summation so that large
// profiles (millions of instruction counts) do not lose low-order bits.
func Sum(xs []float64) float64 {
	var sum, comp float64
	for _, x := range xs {
		y := x - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return sum
}

// Variance returns the population variance of xs (dividing by n, not n-1),
// matching the paper's definition of σ as "the average squared differences
// with the mean". Returns 0 for fewer than two samples.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	mean := Mean(xs)
	var acc float64
	for _, x := range xs {
		d := x - mean
		acc += d * d
	}
	return acc / float64(n)
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// CoV returns the coefficient of variation σ/μ of xs — the dispersion metric
// Sieve uses to assign kernels to tiers. Returns 0 for empty input or when
// the mean is 0 (a degenerate stratum with no work has no dispersion).
func CoV(xs []float64) float64 {
	mean := Mean(xs)
	if mean == 0 {
		return 0
	}
	return StdDev(xs) / math.Abs(mean)
}

// WeightedMean returns the weighted arithmetic mean Σ w_i·x_i / Σ w_i.
// It returns an error when the slices differ in length, a weight is negative,
// or the total weight is zero.
func WeightedMean(xs, ws []float64) (float64, error) {
	if len(xs) != len(ws) {
		return 0, fmt.Errorf("stats: weighted mean: %d values vs %d weights", len(xs), len(ws))
	}
	var num, den float64
	for i, x := range xs {
		if ws[i] < 0 {
			return 0, fmt.Errorf("stats: weighted mean: negative weight %g at index %d", ws[i], i)
		}
		num += ws[i] * x
		den += ws[i]
	}
	if den == 0 {
		return 0, fmt.Errorf("stats: weighted mean: zero total weight")
	}
	return num / den, nil
}

// WeightedHarmonicMean returns 1 / Σ (w_i / x_i) with the weights normalized
// to sum to one. This is the estimator Sieve uses to combine per-stratum IPC
// values into an application-level IPC (Section III-D of the paper).
// It returns an error for mismatched lengths, non-positive values with
// non-zero weight, negative weights, or zero total weight.
func WeightedHarmonicMean(xs, ws []float64) (float64, error) {
	if len(xs) != len(ws) {
		return 0, fmt.Errorf("stats: weighted harmonic mean: %d values vs %d weights", len(xs), len(ws))
	}
	var wsum float64
	for i, w := range ws {
		if w < 0 {
			return 0, fmt.Errorf("stats: weighted harmonic mean: negative weight %g at index %d", w, i)
		}
		wsum += w
	}
	if wsum == 0 {
		return 0, fmt.Errorf("stats: weighted harmonic mean: zero total weight")
	}
	var acc float64
	for i, x := range xs {
		if ws[i] == 0 {
			continue
		}
		if x <= 0 {
			return 0, fmt.Errorf("stats: weighted harmonic mean: non-positive value %g with weight %g at index %d", x, ws[i], i)
		}
		acc += (ws[i] / wsum) / x
	}
	if acc == 0 {
		return 0, fmt.Errorf("stats: weighted harmonic mean: all weights vanished")
	}
	return 1 / acc, nil
}

// HarmonicMean returns the unweighted harmonic mean of xs. Non-positive
// entries yield an error. The paper reports harmonic-mean speedups (Fig. 6
// and Fig. 7), which is the convention for averaging ratios.
func HarmonicMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: harmonic mean of empty slice")
	}
	var acc float64
	for i, x := range xs {
		if x <= 0 {
			return 0, fmt.Errorf("stats: harmonic mean: non-positive value %g at index %d", x, i)
		}
		acc += 1 / x
	}
	return float64(len(xs)) / acc, nil
}

// GeometricMean returns the geometric mean of xs via the log-sum form.
// Non-positive entries yield an error.
func GeometricMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: geometric mean of empty slice")
	}
	var acc float64
	for i, x := range xs {
		if x <= 0 {
			return 0, fmt.Errorf("stats: geometric mean: non-positive value %g at index %d", x, i)
		}
		acc += math.Log(x)
	}
	return math.Exp(acc / float64(len(xs))), nil
}

// Min returns the minimum of xs, or 0 for empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or 0 for empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between closest ranks. It returns an error for empty input
// or p outside [0, 100]. The input is not modified.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: percentile of empty slice")
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("stats: percentile %g outside [0, 100]", p)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median returns the 50th percentile of xs, or 0 for empty input.
func Median(xs []float64) float64 {
	m, err := Percentile(xs, 50)
	if err != nil {
		return 0
	}
	return m
}

// Normalize returns ws scaled so that the entries sum to one. It returns an
// error when a weight is negative or the sum is zero. The input is not
// modified.
func Normalize(ws []float64) ([]float64, error) {
	var sum float64
	for i, w := range ws {
		if w < 0 {
			return nil, fmt.Errorf("stats: normalize: negative weight %g at index %d", w, i)
		}
		sum += w
	}
	if sum == 0 {
		return nil, fmt.Errorf("stats: normalize: zero total weight")
	}
	out := make([]float64, len(ws))
	for i, w := range ws {
		out[i] = w / sum
	}
	return out, nil
}

// AbsRelError returns |predicted-measured| / measured — the paper's accuracy
// metric (Section IV). It returns an error when measured is zero.
func AbsRelError(predicted, measured float64) (float64, error) {
	if measured == 0 {
		return 0, fmt.Errorf("stats: relative error with zero reference")
	}
	return math.Abs(predicted-measured) / math.Abs(measured), nil
}
