package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestMeanBasics(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{42}, 42},
		{"pair", []float64{2, 4}, 3},
		{"negatives", []float64{-1, 1}, 0},
		{"uniform", []float64{5, 5, 5, 5}, 5},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Mean(c.in); got != c.want {
				t.Fatalf("Mean(%v) = %g, want %g", c.in, got, c.want)
			}
		})
	}
}

func TestSumKahanPrecision(t *testing.T) {
	// 1e16 + many small values: naive summation drops the small terms.
	xs := make([]float64, 1001)
	xs[0] = 1e16
	for i := 1; i < len(xs); i++ {
		xs[i] = 1
	}
	if got, want := Sum(xs), 1e16+1000; got != want {
		t.Fatalf("Sum = %g, want %g", got, want)
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 4, 1e-12) {
		t.Fatalf("Variance = %g, want 4", got)
	}
	if got := StdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Fatalf("StdDev = %g, want 2", got)
	}
	if got := Variance([]float64{3}); got != 0 {
		t.Fatalf("Variance of singleton = %g, want 0", got)
	}
}

func TestCoV(t *testing.T) {
	if got := CoV([]float64{5, 5, 5}); got != 0 {
		t.Fatalf("CoV of constant sample = %g, want 0", got)
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9} // mean 5, sd 2
	if got := CoV(xs); !almostEqual(got, 0.4, 1e-12) {
		t.Fatalf("CoV = %g, want 0.4", got)
	}
	if got := CoV([]float64{0, 0}); got != 0 {
		t.Fatalf("CoV with zero mean = %g, want 0", got)
	}
}

func TestCoVScaleInvariance(t *testing.T) {
	// CoV(c·x) == CoV(x) for any c > 0: the property that lets Sieve compare
	// dispersion across kernels with very different instruction magnitudes.
	f := func(raw []float64, scale float64) bool {
		if len(raw) < 2 {
			return true
		}
		c := math.Abs(scale)
		if c < 1e-3 || c > 1e3 || math.IsNaN(c) {
			return true
		}
		xs := make([]float64, len(raw))
		scaled := make([]float64, len(raw))
		for i, v := range raw {
			x := math.Mod(math.Abs(v), 1000) + 1 // keep positive, bounded
			xs[i] = x
			scaled[i] = c * x
		}
		return almostEqual(CoV(xs), CoV(scaled), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedMean(t *testing.T) {
	got, err := WeightedMean([]float64{1, 3}, []float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 2.5, 1e-12) {
		t.Fatalf("WeightedMean = %g, want 2.5", got)
	}
	if _, err := WeightedMean([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("want error on length mismatch")
	}
	if _, err := WeightedMean([]float64{1}, []float64{-1}); err == nil {
		t.Fatal("want error on negative weight")
	}
	if _, err := WeightedMean([]float64{1}, []float64{0}); err == nil {
		t.Fatal("want error on zero total weight")
	}
}

func TestWeightedHarmonicMean(t *testing.T) {
	// Equal weights over {1, 3}: harmonic mean = 2/(1/1 + 1/3) = 1.5.
	got, err := WeightedHarmonicMean([]float64{1, 3}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 1.5, 1e-12) {
		t.Fatalf("WeightedHarmonicMean = %g, want 1.5", got)
	}
	// Zero-weight entries are ignored even if non-positive.
	got, err = WeightedHarmonicMean([]float64{2, -7}, []float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Fatalf("WeightedHarmonicMean with zero weight = %g, want 2", got)
	}
	if _, err := WeightedHarmonicMean([]float64{0}, []float64{1}); err == nil {
		t.Fatal("want error on non-positive value with weight")
	}
	if _, err := WeightedHarmonicMean([]float64{1, 2}, []float64{0, 0}); err == nil {
		t.Fatal("want error on zero total weight")
	}
}

func TestWeightedHarmonicMeanScaleInvariantInWeights(t *testing.T) {
	// Multiplying all weights by a constant must not change the result —
	// the estimator normalizes internally.
	xs := []float64{1.2, 3.4, 0.9, 14}
	ws := []float64{1, 2, 3, 4}
	a, err := WeightedHarmonicMean(xs, ws)
	if err != nil {
		t.Fatal(err)
	}
	scaled := make([]float64, len(ws))
	for i, w := range ws {
		scaled[i] = 17.5 * w
	}
	b, err := WeightedHarmonicMean(xs, scaled)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(a, b, 1e-12) {
		t.Fatalf("scale changed result: %g vs %g", a, b)
	}
}

func TestHarmonicMeanBounds(t *testing.T) {
	// HM ≤ GM ≤ AM for positive samples.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(20)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64()*100 + 0.001
		}
		hm, err := HarmonicMean(xs)
		if err != nil {
			t.Fatal(err)
		}
		gm, err := GeometricMean(xs)
		if err != nil {
			t.Fatal(err)
		}
		am := Mean(xs)
		if hm > gm*(1+1e-9) || gm > am*(1+1e-9) {
			t.Fatalf("mean inequality violated: HM=%g GM=%g AM=%g", hm, gm, am)
		}
	}
}

func TestHarmonicMeanErrors(t *testing.T) {
	if _, err := HarmonicMean(nil); err == nil {
		t.Fatal("want error on empty input")
	}
	if _, err := HarmonicMean([]float64{1, 0}); err == nil {
		t.Fatal("want error on zero element")
	}
	if _, err := GeometricMean(nil); err == nil {
		t.Fatal("want error on empty input")
	}
	if _, err := GeometricMean([]float64{-2}); err == nil {
		t.Fatal("want error on negative element")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if got := Min(xs); got != -1 {
		t.Fatalf("Min = %g", got)
	}
	if got := Max(xs); got != 7 {
		t.Fatalf("Max = %g", got)
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty Min/Max should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	got, err := Percentile(xs, 50)
	if err != nil {
		t.Fatal(err)
	}
	if got != 35 {
		t.Fatalf("P50 = %g, want 35", got)
	}
	got, err = Percentile(xs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != 15 {
		t.Fatalf("P0 = %g, want 15", got)
	}
	got, err = Percentile(xs, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got != 50 {
		t.Fatalf("P100 = %g, want 50", got)
	}
	// Interpolation: P25 of [10, 20] is 12.5.
	got, err = Percentile([]float64{10, 20}, 25)
	if err != nil {
		t.Fatal(err)
	}
	if got != 12.5 {
		t.Fatalf("P25 = %g, want 12.5", got)
	}
	if _, err := Percentile(nil, 50); err == nil {
		t.Fatal("want error on empty input")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Fatal("want error on out-of-range percentile")
	}
	// Input must not be mutated.
	orig := []float64{9, 1, 5}
	if _, err := Percentile(orig, 50); err != nil {
		t.Fatal(err)
	}
	if orig[0] != 9 || orig[1] != 1 || orig[2] != 5 {
		t.Fatalf("Percentile mutated its input: %v", orig)
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Median = %g, want 2.5", got)
	}
	if got := Median(nil); got != 0 {
		t.Fatalf("Median(nil) = %g, want 0", got)
	}
}

func TestNormalize(t *testing.T) {
	out, err := Normalize([]float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 0.25 || out[1] != 0.75 {
		t.Fatalf("Normalize = %v", out)
	}
	if _, err := Normalize([]float64{0, 0}); err == nil {
		t.Fatal("want error on zero sum")
	}
	if _, err := Normalize([]float64{1, -1}); err == nil {
		t.Fatal("want error on negative weight")
	}
}

func TestNormalizeSumsToOne(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		ws := make([]float64, len(raw))
		var nonzero bool
		for i, v := range raw {
			ws[i] = math.Mod(math.Abs(v), 100)
			if ws[i] > 0 {
				nonzero = true
			}
		}
		if !nonzero {
			return true
		}
		out, err := Normalize(ws)
		if err != nil {
			return false
		}
		return almostEqual(Sum(out), 1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAbsRelError(t *testing.T) {
	got, err := AbsRelError(110, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 0.1, 1e-12) {
		t.Fatalf("AbsRelError = %g, want 0.1", got)
	}
	got, err = AbsRelError(90, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 0.1, 1e-12) {
		t.Fatalf("AbsRelError = %g, want 0.1", got)
	}
	if _, err := AbsRelError(1, 0); err == nil {
		t.Fatal("want error on zero reference")
	}
}
