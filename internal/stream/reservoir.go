package stream

import "sort"

// sample is one retained row with its hash priority.
type sample struct {
	row Row
	pri uint64
}

// reservoir keeps a deterministic bounded uniform sample of a kernel's rows:
// the cap rows with the smallest priority hash ("bottom-k" priority
// sampling). Because the priority is a pure function of (seed, row index),
// membership is independent of arrival order and of how rows were sharded
// across workers, and two partial reservoirs merge exactly (bottom-k of the
// union). Until the cap is exceeded the reservoir simply holds every row, so
// small kernels stay exact.
type reservoir struct {
	cap        int
	seed       uint64
	rows       []sample
	heaped     bool // rows is a max-heap ordered by worse()
	overflowed bool // at least one row was seen beyond cap
}

// priority hashes a row's index with the seed (splitmix64 finalizer). The
// golden-ratio multiply decorrelates consecutive indices before mixing.
func priority(seed uint64, index int) uint64 {
	x := seed ^ (uint64(index) * 0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// worse reports whether a should be evicted before b (higher priority loses;
// index breaks the astronomically unlikely hash tie deterministically).
func worse(a, b sample) bool {
	if a.pri != b.pri {
		return a.pri > b.pri
	}
	return a.row.Index > b.row.Index
}

func (r *reservoir) add(row Row) {
	s := sample{row: row, pri: priority(r.seed, row.Index)}
	if len(r.rows) < r.cap {
		r.rows = append(r.rows, s)
		return
	}
	r.overflowed = true
	if !r.heaped {
		r.heapify()
	}
	if worse(s, r.rows[0]) {
		return
	}
	r.rows[0] = s
	r.siftDown(0)
}

// merge folds another reservoir (same cap and seed) into r: concatenate and,
// on overflow, keep the bottom-k of the union by priority.
func (r *reservoir) merge(o *reservoir) {
	r.overflowed = r.overflowed || o.overflowed
	r.rows = append(r.rows, o.rows...)
	r.heaped = false
	if len(r.rows) > r.cap {
		r.overflowed = true
		sort.Slice(r.rows, func(i, j int) bool { return worse(r.rows[j], r.rows[i]) })
		r.rows = r.rows[:r.cap]
	}
}

// heapify establishes the max-heap property (worst sample at the root).
func (r *reservoir) heapify() {
	for i := len(r.rows)/2 - 1; i >= 0; i-- {
		r.siftDown(i)
	}
	r.heaped = true
}

func (r *reservoir) siftDown(i int) {
	n := len(r.rows)
	for {
		l, rt := 2*i+1, 2*i+2
		worst := i
		if l < n && worse(r.rows[l], r.rows[worst]) {
			worst = l
		}
		if rt < n && worse(r.rows[rt], r.rows[worst]) {
			worst = rt
		}
		if worst == i {
			return
		}
		r.rows[i], r.rows[worst] = r.rows[worst], r.rows[i]
		i = worst
	}
}
