// Package stream implements single-pass, bounded-memory ingestion of
// per-invocation profile records — the first phase of a two-phase sampling
// pipeline in the spirit of two-phase stratified CPU sampling: a cheap
// streaming sweep over the *full* run collects per-kernel online statistics
// (Welford accumulators), exact dominant-CTA/first-invocation tracking, and a
// deterministic bounded reservoir of rows per kernel; the expensive work
// (Tier-3 KDE splitting, representative selection) then runs on the bounded
// state only. Memory is O(kernels × reservoir), independent of the number of
// invocations, so workloads with millions of kernel launches ingest at
// constant memory.
//
// # Determinism
//
// Reservoir membership is decided by a priority hash over (seed, invocation
// index): each kernel retains the ReservoirSize rows with the smallest
// priority ("bottom-k" priority sampling). Because the priority is a pure
// function of the record, membership is independent of arrival order, shard
// assignment and worker count — the same rows survive at any Parallelism.
// Records are dispatched to workers in fixed-size batches assigned
// round-robin, and per-shard accumulators are merged in shard order
// (stats.Accumulator.Merge), so every aggregate is reproducible for a fixed
// (Parallelism, BatchSize) configuration; floating-point sums may differ in
// the last ulp across *different* worker counts, exactly as any parallel
// reduction does. Integer state (counts, CTA frequencies, first/dominant
// rows, reservoir membership) is identical at any worker count.
//
// # Ordering contract
//
// Sources must yield records in strictly ascending global invocation-index
// order — the natural order of a chronological profile log or CSV. This keeps
// duplicate detection O(1) instead of requiring an O(n) index set, which
// would defeat the bounded-memory purpose.
package stream

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"

	"github.com/gpusampling/sieve/internal/obs"
	"github.com/gpusampling/sieve/internal/stats"
)

// Defaults for Options fields left zero.
const (
	// DefaultReservoirSize bounds the rows retained per kernel.
	DefaultReservoirSize = 4096
	// DefaultBatchSize is the number of records per dispatch batch in the
	// sharded pass.
	DefaultBatchSize = 1024
	// DefaultSeed seeds the reservoir priority hash.
	DefaultSeed = 1
)

// Row is one profiled kernel invocation — the minimal record the streaming
// pass consumes.
type Row struct {
	// Kernel is the kernel name.
	Kernel string
	// Index is the global chronological invocation index. Sources must
	// yield rows in strictly ascending Index order.
	Index int
	// Pos is the arrival ordinal (0-based position in the stream), assigned
	// by Ingest. Consumers use it to address position-indexed side arrays
	// such as golden cycle counts.
	Pos int
	// InstructionCount is the dynamically executed instruction count.
	InstructionCount float64
	// CTASize is the thread-block size.
	CTASize int
}

// Source yields the next profile row, or io.EOF after the last one.
type Source func() (Row, error)

// Options configures the streaming pass.
type Options struct {
	// ReservoirSize bounds the rows retained per kernel;
	// DefaultReservoirSize if zero. A kernel whose invocation count fits
	// the reservoir is retained completely (exact downstream results).
	ReservoirSize int
	// Seed seeds the reservoir priority hash; DefaultSeed if zero.
	Seed uint64
	// Parallelism is the number of ingestion shards: 0 selects 1
	// (sequential). Reservoir membership and all integer state are
	// identical at any value; see the package comment for float caveats.
	Parallelism int
	// BatchSize is the records-per-batch dispatch granularity of the
	// sharded pass; DefaultBatchSize if zero.
	BatchSize int
}

func (o Options) withDefaults() (Options, error) {
	if o.ReservoirSize == 0 {
		o.ReservoirSize = DefaultReservoirSize
	}
	if o.ReservoirSize < 1 {
		return o, fmt.Errorf("stream: reservoir size %d < 1", o.ReservoirSize)
	}
	if o.Seed == 0 {
		o.Seed = DefaultSeed
	}
	if o.Parallelism == 0 {
		o.Parallelism = 1
	}
	if o.Parallelism < 0 {
		return o, fmt.Errorf("stream: negative parallelism %d", o.Parallelism)
	}
	if o.BatchSize == 0 {
		o.BatchSize = DefaultBatchSize
	}
	if o.BatchSize < 1 {
		return o, fmt.Errorf("stream: batch size %d < 1", o.BatchSize)
	}
	return o, nil
}

// CTAClass summarizes the invocations of one kernel sharing a thread-block
// size.
type CTAClass struct {
	// Size is the thread-block size.
	Size int
	// Count is how many invocations used it.
	Count int
	// First is the earliest (smallest-Index) invocation with this size.
	First Row
}

// KernelDigest is the bounded per-kernel state of one streaming pass.
type KernelDigest struct {
	// Name is the kernel name.
	Name string

	acc   stats.Accumulator // instruction counts
	first Row               // smallest-Index row
	ctas  map[int]*CTAClass // CTA size → class summary
	res   reservoir
}

func newKernelDigest(name string, o Options) *KernelDigest {
	return &KernelDigest{
		Name: name,
		ctas: make(map[int]*CTAClass),
		res:  reservoir{cap: o.ReservoirSize, seed: o.Seed},
	}
}

func (d *KernelDigest) add(row Row) {
	d.acc.Add(row.InstructionCount)
	if d.acc.N() == 1 || row.Index < d.first.Index {
		d.first = row
	}
	if c, ok := d.ctas[row.CTASize]; ok {
		c.Count++
		if row.Index < c.First.Index {
			c.First = row
		}
	} else {
		d.ctas[row.CTASize] = &CTAClass{Size: row.CTASize, Count: 1, First: row}
	}
	d.res.add(row)
}

// merge folds another shard's digest of the same kernel into d.
func (d *KernelDigest) merge(o *KernelDigest) {
	if o.acc.N() == 0 {
		return
	}
	if d.acc.N() == 0 {
		d.acc = o.acc
		d.first = o.first
	} else {
		d.acc.Merge(&o.acc)
		if o.first.Index < d.first.Index {
			d.first = o.first
		}
	}
	for size, oc := range o.ctas {
		if c, ok := d.ctas[size]; ok {
			c.Count += oc.Count
			if oc.First.Index < c.First.Index {
				c.First = oc.First
			}
		} else {
			cc := *oc
			d.ctas[size] = &cc
		}
	}
	d.res.merge(&o.res)
}

// N returns the number of invocations seen for this kernel.
func (d *KernelDigest) N() int { return d.acc.N() }

// Stats returns a copy of the kernel's instruction-count accumulator.
func (d *KernelDigest) Stats() stats.Accumulator { return d.acc }

// First returns the earliest (smallest-Index) invocation.
func (d *KernelDigest) First() Row { return d.first }

// Complete reports whether the reservoir retained every invocation, i.e.
// downstream results computed from Rows are exact rather than sampled.
func (d *KernelDigest) Complete() bool { return !d.res.overflowed }

// Rows returns the retained invocations in ascending Index order.
func (d *KernelDigest) Rows() []Row {
	out := make([]Row, len(d.res.rows))
	for i, s := range d.res.rows {
		out[i] = s.row
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Index < out[b].Index })
	return out
}

// DominantCTA returns the most frequent CTA class; ties break toward the
// class whose first invocation is earliest, matching the materializing
// selector's "size seen first" rule. Unlike reservoir contents this is exact:
// the frequency map tracks every invocation.
func (d *KernelDigest) DominantCTA() CTAClass {
	var best *CTAClass
	for _, c := range d.ctas {
		if best == nil || c.Count > best.Count ||
			(c.Count == best.Count && c.First.Index < best.First.Index) {
			best = c
		}
	}
	if best == nil {
		return CTAClass{}
	}
	return *best
}

// MaxCTA returns the class with the largest thread-block size (exact).
func (d *KernelDigest) MaxCTA() CTAClass {
	var best *CTAClass
	for _, c := range d.ctas {
		if best == nil || c.Size > best.Size {
			best = c
		}
	}
	if best == nil {
		return CTAClass{}
	}
	return *best
}

// NumCTAClasses returns the number of distinct thread-block sizes seen.
func (d *KernelDigest) NumCTAClasses() int { return len(d.ctas) }

// Retained returns the number of rows the reservoir holds — equal to N for
// complete kernels, ReservoirSize for overflowed ones.
func (d *KernelDigest) Retained() int { return len(d.res.rows) }

// Digest is the merged result of one streaming pass.
type Digest struct {
	// Kernels holds one digest per kernel, sorted by kernel name.
	Kernels []*KernelDigest
	// Rows is the total number of records ingested.
	Rows int
}

// shard is one worker's private per-kernel state.
type shard struct {
	opts    Options
	kernels map[string]*KernelDigest
}

func newShard(o Options) *shard {
	return &shard{opts: o, kernels: make(map[string]*KernelDigest)}
}

func (s *shard) add(row Row) {
	d, ok := s.kernels[row.Kernel]
	if !ok {
		d = newKernelDigest(row.Kernel, s.opts)
		s.kernels[row.Kernel] = d
	}
	d.add(row)
}

// Ingest drives one bounded-memory pass over the source. Rows are validated
// (non-empty kernel, positive instruction count and CTA size) and must arrive
// in strictly ascending Index order, which also rejects duplicate indices.
// An empty source yields an empty digest, not an error.
func Ingest(next Source, opts Options) (*Digest, error) {
	return IngestContext(context.Background(), next, opts)
}

// IngestContext is Ingest with cancellation: the reader checks ctx once per
// dispatch batch (BatchSize rows), so a cancelled or timed-out context stops
// the pass mid-stream — worker shards are drained and their goroutines
// released — and the call reports ctx.Err() instead of a digest.
func IngestContext(ctx context.Context, next Source, opts Options) (*Digest, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	// Observability: record the pass as a stream.ingest span (row/kernel
	// totals plus per-kernel exact-vs-sampled retention) when a collector
	// rides ctx; a bare context skips all of it.
	_, sp := obs.StartSpan(ctx, "stream.ingest")
	defer sp.End()
	if sp.Active() {
		sp.SetAttr("parallelism", o.Parallelism)
		sp.SetAttr("batch_size", o.BatchSize)
		sp.SetAttr("reservoir_size", o.ReservoirSize)
	}
	var shards []*shard
	var rows int
	if o.Parallelism <= 1 {
		shards, rows, err = ingestSequential(ctx, next, o)
	} else {
		shards, rows, err = ingestParallel(ctx, next, o)
	}
	if err != nil {
		return nil, err
	}
	d := assemble(shards, rows)
	if sp.Active() {
		sp.Add("rows", int64(d.Rows))
		sp.SetAttr("kernels", len(d.Kernels))
		exact, sampled := 0, 0
		for _, kd := range d.Kernels {
			if kd.Complete() {
				exact++
			} else {
				sampled++
			}
			sp.Add("retained", int64(kd.Retained()))
		}
		sp.SetAttr("kernels_exact", exact)
		sp.SetAttr("kernels_sampled", sampled)
	}
	return d, nil
}

// validate checks one row and the ordering contract. lastIndex is the
// previous row's Index (math.MinInt before the first row).
func validate(row Row, pos, lastIndex int) error {
	if row.Kernel == "" {
		return fmt.Errorf("stream: record %d has no kernel name", pos)
	}
	if row.InstructionCount <= 0 {
		return fmt.Errorf("stream: record %d (kernel %s) has non-positive instruction count", pos, row.Kernel)
	}
	if row.CTASize <= 0 {
		return fmt.Errorf("stream: record %d (kernel %s) has non-positive CTA size", pos, row.Kernel)
	}
	if row.Index <= lastIndex {
		return fmt.Errorf("stream: record %d: invocation index %d not above previous index %d (streaming ingestion requires strictly ascending unique indices)", pos, row.Index, lastIndex)
	}
	return nil
}

func ingestSequential(ctx context.Context, next Source, o Options) ([]*shard, int, error) {
	sh := newShard(o)
	pos, lastIndex := 0, math.MinInt
	for {
		// Check at the same granularity as the sharded pass: once per
		// BatchSize rows, plus before the first.
		if pos%o.BatchSize == 0 {
			if err := ctx.Err(); err != nil {
				return nil, 0, err
			}
		}
		row, err := next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, 0, err
		}
		row.Pos = pos
		if err := validate(row, pos, lastIndex); err != nil {
			return nil, 0, err
		}
		lastIndex = row.Index
		sh.add(row)
		pos++
	}
	return []*shard{sh}, pos, nil
}

// ingestParallel shards the pass: the reader validates rows and dispatches
// fixed-size batches round-robin to worker-owned shards, so which worker
// processes which row is a pure function of (arrival position, Parallelism,
// BatchSize) and the merged result is reproducible.
func ingestParallel(ctx context.Context, next Source, o Options) ([]*shard, int, error) {
	shards := make([]*shard, o.Parallelism)
	chans := make([]chan []Row, o.Parallelism)
	pool := sync.Pool{New: func() any { return make([]Row, 0, o.BatchSize) }}
	var wg sync.WaitGroup
	for i := range shards {
		shards[i] = newShard(o)
		chans[i] = make(chan []Row, 2)
		wg.Add(1)
		go func(sh *shard, ch chan []Row) {
			defer wg.Done()
			for batch := range ch {
				for i := range batch {
					sh.add(batch[i])
				}
				pool.Put(batch[:0]) //nolint:staticcheck // slice reuse is the point
			}
		}(shards[i], chans[i])
	}
	closeAll := func() {
		for _, ch := range chans {
			close(ch)
		}
		wg.Wait()
	}

	batch := pool.Get().([]Row)
	nextShard := 0
	flush := func() {
		if len(batch) == 0 {
			return
		}
		chans[nextShard] <- batch
		nextShard = (nextShard + 1) % o.Parallelism
		batch = pool.Get().([]Row)
	}
	pos, lastIndex := 0, math.MinInt
	for {
		// Cancellation is observed between dispatch batches: the current
		// batch is abandoned, the shard channels close, and closeAll waits
		// for every worker to exit before the error returns.
		if pos%o.BatchSize == 0 {
			if err := ctx.Err(); err != nil {
				closeAll()
				return nil, 0, err
			}
		}
		row, err := next()
		if err == io.EOF {
			break
		}
		if err == nil {
			row.Pos = pos
			err = validate(row, pos, lastIndex)
		}
		if err != nil {
			closeAll()
			return nil, 0, err
		}
		lastIndex = row.Index
		batch = append(batch, row)
		if len(batch) == o.BatchSize {
			flush()
		}
		pos++
	}
	flush()
	closeAll()
	return shards, pos, nil
}

// assemble merges the shards in shard order and sorts kernels by name.
func assemble(shards []*shard, rows int) *Digest {
	merged := make(map[string]*KernelDigest)
	var names []string
	for _, sh := range shards {
		for name, d := range sh.kernels {
			if m, ok := merged[name]; ok {
				m.merge(d)
			} else {
				merged[name] = d
				names = append(names, name)
			}
		}
	}
	sort.Strings(names)
	dig := &Digest{Rows: rows, Kernels: make([]*KernelDigest, len(names))}
	for i, name := range names {
		dig.Kernels[i] = merged[name]
	}
	return dig
}
