package stream

import (
	"fmt"
	"io"
	"math"
	"reflect"
	"sort"
	"testing"
)

// sliceSource yields rows from a slice, then io.EOF.
func sliceSource(rows []Row) Source {
	i := 0
	return func() (Row, error) {
		if i >= len(rows) {
			return Row{}, io.EOF
		}
		r := rows[i]
		i++
		return r, nil
	}
}

// genRows builds a deterministic synthetic stream: kernels round-robin, a
// couple of CTA sizes, instruction counts with per-kernel spread.
func genRows(n, kernels int) []Row {
	rows := make([]Row, n)
	for i := 0; i < n; i++ {
		k := i % kernels
		base := float64(1000 * (k + 1))
		// Deterministic wobble without math/rand.
		wobble := float64(priority(7, i)%1000) / 1000.0
		rows[i] = Row{
			Kernel:           fmt.Sprintf("k%02d", k),
			Index:            i,
			InstructionCount: base * (1 + 0.5*wobble),
			CTASize:          128 << (uint(i/kernels) % 2),
		}
	}
	return rows
}

func indicesOf(rows []Row) []int {
	out := make([]int, len(rows))
	for i, r := range rows {
		out[i] = r.Index
	}
	return out
}

func TestIngestCompleteKernelsRetainEverything(t *testing.T) {
	rows := genRows(300, 3)
	d, err := Ingest(sliceSource(rows), Options{ReservoirSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	if d.Rows != 300 {
		t.Fatalf("Rows = %d, want 300", d.Rows)
	}
	if len(d.Kernels) != 3 {
		t.Fatalf("kernels = %d, want 3", len(d.Kernels))
	}
	for _, kd := range d.Kernels {
		if !kd.Complete() {
			t.Fatalf("kernel %s: reservoir overflowed with exactly-fitting cap", kd.Name)
		}
		if kd.N() != 100 || len(kd.Rows()) != 100 {
			t.Fatalf("kernel %s: N=%d rows=%d, want 100", kd.Name, kd.N(), len(kd.Rows()))
		}
		got := kd.Rows()
		if !sort.SliceIsSorted(got, func(a, b int) bool { return got[a].Index < got[b].Index }) {
			t.Fatalf("kernel %s: rows not sorted by index", kd.Name)
		}
	}
	// Kernels sorted by name.
	for i := 1; i < len(d.Kernels); i++ {
		if d.Kernels[i-1].Name >= d.Kernels[i].Name {
			t.Fatal("kernels not sorted by name")
		}
	}
}

func TestReservoirBottomKMatchesBruteForce(t *testing.T) {
	const n, cap = 500, 16
	rows := genRows(n, 1)
	d, err := Ingest(sliceSource(rows), Options{ReservoirSize: cap, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	kd := d.Kernels[0]
	if kd.Complete() {
		t.Fatal("expected overflow")
	}
	if kd.N() != n {
		t.Fatalf("N = %d, want %d", kd.N(), n)
	}
	// Brute-force bottom-k by priority.
	type pr struct {
		idx int
		pri uint64
	}
	all := make([]pr, n)
	for i := range rows {
		all[i] = pr{idx: rows[i].Index, pri: priority(42, rows[i].Index)}
	}
	sort.Slice(all, func(a, b int) bool { return all[a].pri < all[b].pri })
	want := make([]int, cap)
	for i := 0; i < cap; i++ {
		want[i] = all[i].idx
	}
	sort.Ints(want)
	if got := indicesOf(kd.Rows()); !reflect.DeepEqual(got, want) {
		t.Fatalf("reservoir membership = %v, want bottom-%d by priority %v", got, cap, want)
	}
}

// TestIngestDeterministicAcrossParallelism checks that reservoir membership,
// counts, CTA classes and first rows are identical at any worker count and
// batch size — the property the streaming stratifier's exactness rests on.
func TestIngestDeterministicAcrossParallelism(t *testing.T) {
	rows := genRows(2000, 5)
	base, err := Ingest(sliceSource(rows), Options{ReservoirSize: 64, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 3, 8} {
		for _, bs := range []int{1, 7, 256} {
			d, err := Ingest(sliceSource(rows), Options{ReservoirSize: 64, Parallelism: p, BatchSize: bs})
			if err != nil {
				t.Fatalf("p=%d bs=%d: %v", p, bs, err)
			}
			if d.Rows != base.Rows || len(d.Kernels) != len(base.Kernels) {
				t.Fatalf("p=%d bs=%d: shape diverges", p, bs)
			}
			for i, kd := range d.Kernels {
				bk := base.Kernels[i]
				if kd.Name != bk.Name || kd.N() != bk.N() || kd.Complete() != bk.Complete() {
					t.Fatalf("p=%d bs=%d kernel %s: summary diverges", p, bs, kd.Name)
				}
				if !reflect.DeepEqual(indicesOf(kd.Rows()), indicesOf(bk.Rows())) {
					t.Fatalf("p=%d bs=%d kernel %s: reservoir membership diverges", p, bs, kd.Name)
				}
				if kd.First().Index != bk.First().Index {
					t.Fatalf("p=%d bs=%d kernel %s: first row diverges", p, bs, kd.Name)
				}
				if kd.DominantCTA() != bk.DominantCTA() || kd.MaxCTA() != bk.MaxCTA() {
					t.Fatalf("p=%d bs=%d kernel %s: CTA classes diverge", p, bs, kd.Name)
				}
				ka, ba := kd.Stats(), bk.Stats()
				if ka.Min() != ba.Min() || ka.Max() != ba.Max() {
					t.Fatalf("p=%d bs=%d kernel %s: min/max diverge", p, bs, kd.Name)
				}
				if math.Abs(ka.Sum()-ba.Sum()) > 1e-6*math.Abs(ba.Sum()) {
					t.Fatalf("p=%d bs=%d kernel %s: sums diverge beyond tolerance", p, bs, kd.Name)
				}
			}
		}
	}
}

func TestIngestValidation(t *testing.T) {
	cases := []struct {
		name string
		rows []Row
	}{
		{"no kernel", []Row{{Kernel: "", Index: 0, InstructionCount: 1, CTASize: 32}}},
		{"bad instcount", []Row{{Kernel: "k", Index: 0, InstructionCount: 0, CTASize: 32}}},
		{"bad cta", []Row{{Kernel: "k", Index: 0, InstructionCount: 1, CTASize: 0}}},
		{"duplicate index", []Row{
			{Kernel: "k", Index: 3, InstructionCount: 1, CTASize: 32},
			{Kernel: "k", Index: 3, InstructionCount: 1, CTASize: 32},
		}},
		{"out of order", []Row{
			{Kernel: "k", Index: 5, InstructionCount: 1, CTASize: 32},
			{Kernel: "k", Index: 4, InstructionCount: 1, CTASize: 32},
		}},
	}
	for _, c := range cases {
		for _, p := range []int{1, 4} {
			if _, err := Ingest(sliceSource(c.rows), Options{Parallelism: p, BatchSize: 1}); err == nil {
				t.Fatalf("%s (parallelism %d): want error", c.name, p)
			}
		}
	}
}

func TestIngestSourceErrorPropagates(t *testing.T) {
	boom := fmt.Errorf("disk on fire")
	n := 0
	src := func() (Row, error) {
		if n == 10 {
			return Row{}, boom
		}
		r := Row{Kernel: "k", Index: n, InstructionCount: 1, CTASize: 32}
		n++
		return r, nil
	}
	if _, err := Ingest(src, Options{Parallelism: 4, BatchSize: 2}); err != boom {
		t.Fatalf("err = %v, want source error", err)
	}
}

func TestIngestEmptySource(t *testing.T) {
	d, err := Ingest(sliceSource(nil), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Rows != 0 || len(d.Kernels) != 0 {
		t.Fatalf("empty source yielded %d rows, %d kernels", d.Rows, len(d.Kernels))
	}
}

func TestIngestRejectsBadOptions(t *testing.T) {
	for _, o := range []Options{
		{ReservoirSize: -1},
		{Parallelism: -2},
		{BatchSize: -5},
	} {
		if _, err := Ingest(sliceSource(nil), o); err == nil {
			t.Fatalf("options %+v: want error", o)
		}
	}
}

func TestDominantCTATieBreaksTowardEarliest(t *testing.T) {
	rows := []Row{
		{Kernel: "k", Index: 0, InstructionCount: 1, CTASize: 256},
		{Kernel: "k", Index: 1, InstructionCount: 1, CTASize: 128},
		{Kernel: "k", Index: 2, InstructionCount: 1, CTASize: 256},
		{Kernel: "k", Index: 3, InstructionCount: 1, CTASize: 128},
	}
	d, err := Ingest(sliceSource(rows), Options{})
	if err != nil {
		t.Fatal(err)
	}
	dom := d.Kernels[0].DominantCTA()
	if dom.Size != 256 || dom.First.Index != 0 || dom.Count != 2 {
		t.Fatalf("dominant = %+v, want size 256 first 0 count 2", dom)
	}
	if max := d.Kernels[0].MaxCTA(); max.Size != 256 {
		t.Fatalf("max CTA = %+v, want 256", max)
	}
}
