package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead exercises the trace parser with arbitrary bytes: it must never
// panic, and anything it accepts must be a valid trace that survives a
// write/read round trip.
func FuzzRead(f *testing.F) {
	var seed bytes.Buffer
	if err := sampleTrace().Write(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add("")
	f.Add("sieve-trace 2\nkernel k\ninvocation 0\ngrid 1 1 1\nblock 32 1 1\nwarps 1\ninstrs 0\n")
	f.Add("sieve-trace 1\nkernel k\ninvocation 0\ngrid 1 1 1\nblock 32 1 1\nwarps 1\ninstrs 1\n0 1000 LDG ffffffff beef\n")
	f.Add("garbage\nmore garbage")
	f.Fuzz(func(t *testing.T, in string) {
		tr, err := Read(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("Read accepted an invalid trace: %v", err)
		}
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			t.Fatalf("accepted trace cannot be rewritten: %v", err)
		}
		if _, err := Read(&buf); err != nil {
			t.Fatalf("rewritten trace cannot be reread: %v", err)
		}
	})
}
