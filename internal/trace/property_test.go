package trace

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/gpusampling/sieve/internal/cudamodel"
)

// randomTrace builds an arbitrary-but-valid trace from a seed.
func randomTrace(seed int64) *Trace {
	rng := rand.New(rand.NewSource(seed))
	warps := 1 + rng.Intn(6)
	tr := &Trace{
		Kernel:     "k" + string(rune('a'+rng.Intn(26))),
		Invocation: rng.Intn(1000),
		Grid:       cudamodel.Dim3{X: int32(1 + rng.Intn(100)), Y: int32(1 + rng.Intn(4)), Z: 1},
		Block:      cudamodel.Dim3{X: int32(32 * (1 + rng.Intn(8))), Y: 1, Z: 1},
		Warps:      warps,
	}
	ops := []Opcode{OpIMAD, OpFFMA, OpHMMA, OpLDG, OpSTG, OpLDS, OpSTS, OpBRA}
	for w := 0; w < warps; w++ {
		pc := uint64(0x1000)
		n := 1 + rng.Intn(30)
		for i := 0; i < n; i++ {
			ins := Instr{
				Warp:       w,
				PC:         pc,
				Op:         ops[rng.Intn(len(ops))],
				ActiveMask: uint32(rng.Uint64() | 1), // never empty
			}
			if ins.Op.IsMemory() || ins.Op.IsShared() {
				ins.Addr = rng.Uint64() >> 12
			}
			if ins.Op.IsMemory() {
				ins.Lines = 1 + rng.Intn(32)
			}
			tr.Instrs = append(tr.Instrs, ins)
			pc += 16
		}
		tr.Instrs = append(tr.Instrs, Instr{Warp: w, PC: pc, Op: OpEXIT, ActiveMask: 0xFFFFFFFF})
	}
	return tr
}

// TestPropertyRoundTripIdentity: Write∘Read is the identity on every valid
// trace.
func TestPropertyRoundTripIdentity(t *testing.T) {
	f := func(seed int64) bool {
		tr := randomTrace(seed)
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if got.Kernel != tr.Kernel || got.Invocation != tr.Invocation ||
			got.Grid != tr.Grid || got.Block != tr.Block || got.Warps != tr.Warps {
			return false
		}
		if len(got.Instrs) != len(tr.Instrs) {
			return false
		}
		for i := range tr.Instrs {
			if got.Instrs[i] != tr.Instrs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyGeneratedTracesAlwaysValid: the tracer emits valid traces for
// any invocation of any catalog workload shape.
func TestPropertyGeneratedTracesAlwaysValid(t *testing.T) {
	f := func(seed int64, cap uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		inv := &cudamodel.Invocation{
			Kernel: "k",
			Index:  rng.Intn(100),
			Grid:   cudamodel.Dim3{X: int32(1 + rng.Intn(5000)), Y: 1, Z: 1},
			Block:  cudamodel.Dim3{X: int32(32 * (1 + rng.Intn(16))), Y: 1, Z: 1},
			Chars: cudamodel.Characteristics{
				InstructionCount:     float64(1+rng.Intn(1<<20)) * 32,
				ThreadGlobalLoads:    float64(rng.Intn(1 << 16)),
				ThreadGlobalStores:   float64(rng.Intn(1 << 14)),
				ThreadSharedLoads:    float64(rng.Intn(1 << 14)),
				ThreadSharedStores:   float64(rng.Intn(1 << 12)),
				DivergenceEfficiency: 0.5 + rng.Float64()*0.5,
				ThreadBlocks:         float64(1 + rng.Intn(5000)),
			},
			Hidden: cudamodel.Hidden{
				CacheLocality: rng.Float64(),
				RowLocality:   rng.Float64(),
				L2WorkingSet:  float64(rng.Intn(1 << 24)),
			},
		}
		maxInstrs := int(cap%20000) + 16
		tr, err := Generate(inv, maxInstrs, seed)
		if err != nil {
			return false
		}
		if tr.Validate() != nil {
			return false
		}
		// The cap holds (plus one EXIT per warp).
		return len(tr.Instrs) <= maxInstrs+tr.Warps+tr.Warps*4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
