// Package trace defines the SASS-like plain-text trace format the sampling
// workflow hands to the detailed simulator (Section V-G of the paper: the
// Accel-sim tracer is modified "to only create the SASS trace of the selected
// kernel invocations; the traces are simple plain text files").
//
// A trace holds one kernel invocation's dynamic warp-instruction stream. The
// text encoding is line-oriented: a small header followed by one instruction
// per line, so traces can be diffed, grepped and streamed.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/gpusampling/sieve/internal/cudamodel"
)

// Opcode is a SASS-like instruction class. The simulator keys its latencies
// and resource usage on these classes rather than exact SASS mnemonics.
type Opcode string

// The opcode classes emitted by the tracer.
const (
	OpIMAD Opcode = "IMAD" // integer multiply-add (general ALU)
	OpFFMA Opcode = "FFMA" // FP32 fused multiply-add
	OpHMMA Opcode = "HMMA" // tensor-core matrix multiply-accumulate
	OpLDG  Opcode = "LDG"  // global load
	OpSTG  Opcode = "STG"  // global store
	OpLDS  Opcode = "LDS"  // shared-memory load
	OpSTS  Opcode = "STS"  // shared-memory store
	OpBRA  Opcode = "BRA"  // branch
	OpEXIT Opcode = "EXIT" // warp exit
)

// IsMemory reports whether the opcode accesses the global memory hierarchy.
func (op Opcode) IsMemory() bool { return op == OpLDG || op == OpSTG }

// IsShared reports whether the opcode accesses shared memory.
func (op Opcode) IsShared() bool { return op == OpLDS || op == OpSTS }

// Valid reports whether the opcode is one the format defines.
func (op Opcode) Valid() bool {
	switch op {
	case OpIMAD, OpFFMA, OpHMMA, OpLDG, OpSTG, OpLDS, OpSTS, OpBRA, OpEXIT:
		return true
	}
	return false
}

// Instr is one dynamic warp instruction.
type Instr struct {
	// Warp is the issuing warp's ID within the invocation.
	Warp int
	// PC is the program counter.
	PC uint64
	// Op is the instruction class.
	Op Opcode
	// ActiveMask is the 32-lane execution mask.
	ActiveMask uint32
	// Addr is the accessed address for memory/shared instructions, 0
	// otherwise.
	Addr uint64
	// Lines is the number of 128-byte lines the warp's lanes touch for a
	// global memory instruction (its coalescing degree): 1 is perfectly
	// coalesced, up to 32 fully scattered. 0 is treated as 1; non-memory
	// instructions ignore it.
	Lines int
}

// Trace is the dynamic instruction stream of one kernel invocation.
type Trace struct {
	// Kernel is the kernel name.
	Kernel string
	// Invocation is the global invocation index within the workload.
	Invocation int
	// Grid and Block are the launch dimensions.
	Grid, Block cudamodel.Dim3
	// Warps is the number of traced warps.
	Warps int
	// Instrs is the instruction stream, ordered per warp (instructions of
	// the same warp appear in program order; different warps interleave).
	Instrs []Instr
}

// Validate checks the trace's structural invariants.
func (t *Trace) Validate() error {
	if t.Kernel == "" {
		return fmt.Errorf("trace: no kernel name")
	}
	if t.Warps <= 0 {
		return fmt.Errorf("trace: %s: non-positive warp count %d", t.Kernel, t.Warps)
	}
	if len(t.Instrs) == 0 {
		return fmt.Errorf("trace: %s: empty instruction stream", t.Kernel)
	}
	for i, ins := range t.Instrs {
		if ins.Warp < 0 || ins.Warp >= t.Warps {
			return fmt.Errorf("trace: %s: instr %d warp %d outside [0, %d)", t.Kernel, i, ins.Warp, t.Warps)
		}
		if !ins.Op.Valid() {
			return fmt.Errorf("trace: %s: instr %d has unknown opcode %q", t.Kernel, i, ins.Op)
		}
		if ins.ActiveMask == 0 {
			return fmt.Errorf("trace: %s: instr %d has empty active mask", t.Kernel, i)
		}
		if ins.Lines < 0 || ins.Lines > 32 {
			return fmt.Errorf("trace: %s: instr %d touches %d lines, want 0..32", t.Kernel, i, ins.Lines)
		}
	}
	return nil
}

// format version written in the header; readers reject newer versions.
const formatVersion = 2

// Write serializes the trace in the plain-text format.
func (t *Trace) Write(w io.Writer) error {
	if err := t.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "sieve-trace %d\n", formatVersion)
	fmt.Fprintf(bw, "kernel %s\n", t.Kernel)
	fmt.Fprintf(bw, "invocation %d\n", t.Invocation)
	fmt.Fprintf(bw, "grid %d %d %d\n", t.Grid.X, t.Grid.Y, t.Grid.Z)
	fmt.Fprintf(bw, "block %d %d %d\n", t.Block.X, t.Block.Y, t.Block.Z)
	fmt.Fprintf(bw, "warps %d\n", t.Warps)
	fmt.Fprintf(bw, "instrs %d\n", len(t.Instrs))
	for _, ins := range t.Instrs {
		if ins.Op.IsMemory() {
			lines := ins.Lines
			if lines < 1 {
				lines = 1
			}
			fmt.Fprintf(bw, "%d %x %s %x %x %d\n", ins.Warp, ins.PC, ins.Op, ins.ActiveMask, ins.Addr, lines)
			continue
		}
		if ins.Op.IsShared() {
			fmt.Fprintf(bw, "%d %x %s %x %x\n", ins.Warp, ins.PC, ins.Op, ins.ActiveMask, ins.Addr)
			continue
		}
		fmt.Fprintf(bw, "%d %x %s %x\n", ins.Warp, ins.PC, ins.Op, ins.ActiveMask)
	}
	return bw.Flush()
}

// Read parses a trace previously written by Write.
func Read(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)

	var t Trace
	var nInstrs int
	header := []struct {
		key   string
		parse func(fields []string) error
	}{
		{"sieve-trace", func(f []string) error {
			v, err := strconv.Atoi(f[0])
			if err != nil || v > formatVersion {
				return fmt.Errorf("unsupported trace version %q", f[0])
			}
			return nil
		}},
		{"kernel", func(f []string) error { t.Kernel = f[0]; return nil }},
		{"invocation", func(f []string) error {
			var err error
			t.Invocation, err = strconv.Atoi(f[0])
			return err
		}},
		{"grid", func(f []string) error { return parseDim3(f, &t.Grid) }},
		{"block", func(f []string) error { return parseDim3(f, &t.Block) }},
		{"warps", func(f []string) error {
			var err error
			t.Warps, err = strconv.Atoi(f[0])
			return err
		}},
		{"instrs", func(f []string) error {
			var err error
			nInstrs, err = strconv.Atoi(f[0])
			return err
		}},
	}
	for _, h := range header {
		if !sc.Scan() {
			return nil, fmt.Errorf("trace: truncated header, missing %q", h.key)
		}
		fields := strings.Fields(sc.Text())
		if len(fields) < 2 || fields[0] != h.key {
			return nil, fmt.Errorf("trace: bad header line %q, want %q", sc.Text(), h.key)
		}
		if err := h.parse(fields[1:]); err != nil {
			return nil, fmt.Errorf("trace: header %q: %w", h.key, err)
		}
	}
	if nInstrs < 0 {
		return nil, fmt.Errorf("trace: negative instruction count %d", nInstrs)
	}

	t.Instrs = make([]Instr, 0, nInstrs)
	for line := 1; sc.Scan(); line++ {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		if len(fields) < 4 {
			return nil, fmt.Errorf("trace: instr line %d: %q too short", line, sc.Text())
		}
		var ins Instr
		var err error
		if ins.Warp, err = strconv.Atoi(fields[0]); err != nil {
			return nil, fmt.Errorf("trace: instr line %d: bad warp: %w", line, err)
		}
		if ins.PC, err = strconv.ParseUint(fields[1], 16, 64); err != nil {
			return nil, fmt.Errorf("trace: instr line %d: bad pc: %w", line, err)
		}
		ins.Op = Opcode(fields[2])
		mask, err := strconv.ParseUint(fields[3], 16, 32)
		if err != nil {
			return nil, fmt.Errorf("trace: instr line %d: bad mask: %w", line, err)
		}
		ins.ActiveMask = uint32(mask)
		if ins.Op.IsMemory() || ins.Op.IsShared() {
			if len(fields) < 5 {
				return nil, fmt.Errorf("trace: instr line %d: memory op missing address", line)
			}
			if ins.Addr, err = strconv.ParseUint(fields[4], 16, 64); err != nil {
				return nil, fmt.Errorf("trace: instr line %d: bad address: %w", line, err)
			}
			// Version 2 adds the coalescing degree for global memory ops;
			// version-1 files omit it and default to 1.
			if ins.Op.IsMemory() {
				ins.Lines = 1
				if len(fields) >= 6 {
					if ins.Lines, err = strconv.Atoi(fields[5]); err != nil {
						return nil, fmt.Errorf("trace: instr line %d: bad line count: %w", line, err)
					}
				}
			}
		}
		t.Instrs = append(t.Instrs, ins)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if len(t.Instrs) != nInstrs {
		return nil, fmt.Errorf("trace: header promises %d instructions, found %d", nInstrs, len(t.Instrs))
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

func parseDim3(fields []string, d *cudamodel.Dim3) error {
	if len(fields) != 3 {
		return fmt.Errorf("want 3 dims, got %d", len(fields))
	}
	vals := make([]int32, 3)
	for i, f := range fields {
		v, err := strconv.ParseInt(f, 10, 32)
		if err != nil {
			return err
		}
		vals[i] = int32(v)
	}
	d.X, d.Y, d.Z = vals[0], vals[1], vals[2]
	return nil
}
