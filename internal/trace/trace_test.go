package trace

import (
	"bytes"
	"strings"
	"testing"

	"github.com/gpusampling/sieve/internal/cudamodel"
	"github.com/gpusampling/sieve/internal/workloads"
)

func sampleTrace() *Trace {
	return &Trace{
		Kernel:     "k",
		Invocation: 7,
		Grid:       cudamodel.Dim3{X: 4, Y: 1, Z: 1},
		Block:      cudamodel.Dim3{X: 64, Y: 1, Z: 1},
		Warps:      2,
		Instrs: []Instr{
			{Warp: 0, PC: 0x1000, Op: OpIMAD, ActiveMask: 0xFFFFFFFF},
			{Warp: 0, PC: 0x1010, Op: OpLDG, ActiveMask: 0xFFFFFFFF, Addr: 0xdeadbeef, Lines: 4},
			{Warp: 1, PC: 0x1000, Op: OpLDS, ActiveMask: 0xFFFF, Addr: 0x40},
			{Warp: 0, PC: 0x1020, Op: OpEXIT, ActiveMask: 0xFFFFFFFF},
			{Warp: 1, PC: 0x1010, Op: OpEXIT, ActiveMask: 0xFFFFFFFF},
		},
	}
}

func TestOpcodePredicates(t *testing.T) {
	if !OpLDG.IsMemory() || !OpSTG.IsMemory() || OpLDS.IsMemory() || OpIMAD.IsMemory() {
		t.Fatal("IsMemory misclassifies")
	}
	if !OpLDS.IsShared() || !OpSTS.IsShared() || OpLDG.IsShared() {
		t.Fatal("IsShared misclassifies")
	}
	for _, op := range []Opcode{OpIMAD, OpFFMA, OpHMMA, OpLDG, OpSTG, OpLDS, OpSTS, OpBRA, OpEXIT} {
		if !op.Valid() {
			t.Fatalf("%s should be valid", op)
		}
	}
	if Opcode("FROB").Valid() {
		t.Fatal("unknown opcode accepted")
	}
}

func TestValidate(t *testing.T) {
	if err := sampleTrace().Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(*Trace)
	}{
		{"no kernel", func(tr *Trace) { tr.Kernel = "" }},
		{"zero warps", func(tr *Trace) { tr.Warps = 0 }},
		{"no instrs", func(tr *Trace) { tr.Instrs = nil }},
		{"warp out of range", func(tr *Trace) { tr.Instrs[0].Warp = 5 }},
		{"bad opcode", func(tr *Trace) { tr.Instrs[0].Op = "NOP9" }},
		{"empty mask", func(tr *Trace) { tr.Instrs[0].ActiveMask = 0 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tr := sampleTrace()
			c.mutate(tr)
			if err := tr.Validate(); err == nil {
				t.Fatal("want validation error")
			}
		})
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kernel != tr.Kernel || got.Invocation != tr.Invocation ||
		got.Grid != tr.Grid || got.Block != tr.Block || got.Warps != tr.Warps {
		t.Fatalf("header changed: %+v", got)
	}
	if len(got.Instrs) != len(tr.Instrs) {
		t.Fatalf("instrs %d, want %d", len(got.Instrs), len(tr.Instrs))
	}
	for i := range tr.Instrs {
		if got.Instrs[i] != tr.Instrs[i] {
			t.Fatalf("instr %d changed: %+v vs %+v", i, got.Instrs[i], tr.Instrs[i])
		}
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"bad magic", "not-a-trace 1\n"},
		{"future version", "sieve-trace 99\nkernel k\ninvocation 0\ngrid 1 1 1\nblock 32 1 1\nwarps 1\ninstrs 0\n"},
		{"truncated header", "sieve-trace 1\nkernel k\n"},
		{"instr count mismatch", "sieve-trace 1\nkernel k\ninvocation 0\ngrid 1 1 1\nblock 32 1 1\nwarps 1\ninstrs 2\n0 1000 IMAD ffffffff\n"},
		{"memory op without address", "sieve-trace 1\nkernel k\ninvocation 0\ngrid 1 1 1\nblock 32 1 1\nwarps 1\ninstrs 1\n0 1000 LDG ffffffff\n"},
		{"bad warp", "sieve-trace 1\nkernel k\ninvocation 0\ngrid 1 1 1\nblock 32 1 1\nwarps 1\ninstrs 1\nx 1000 IMAD ffffffff\n"},
		{"bad dims", "sieve-trace 1\nkernel k\ninvocation 0\ngrid 1 1\nblock 32 1 1\nwarps 1\ninstrs 0\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Read(strings.NewReader(c.in)); err == nil {
				t.Fatal("want error")
			}
		})
	}
}

func TestWriteRejectsInvalid(t *testing.T) {
	tr := sampleTrace()
	tr.Kernel = ""
	var buf bytes.Buffer
	if err := tr.Write(&buf); err == nil {
		t.Fatal("want error for invalid trace")
	}
}

func testInvocation(t *testing.T) *cudamodel.Invocation {
	t.Helper()
	spec, err := workloads.ByName("gru")
	if err != nil {
		t.Fatal(err)
	}
	w, err := workloads.Generate(spec, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	return &w.Invocations[0]
}

func TestGenerateBasics(t *testing.T) {
	inv := testInvocation(t)
	tr, err := Generate(inv, 5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Kernel != inv.Kernel || tr.Invocation != inv.Index {
		t.Fatal("trace identity mismatch")
	}
	if len(tr.Instrs) > 5000+tr.Warps {
		t.Fatalf("trace exceeds cap: %d instructions", len(tr.Instrs))
	}
	// Each warp ends with EXIT, and per-warp PCs are monotonically
	// increasing.
	lastPC := make(map[int]uint64)
	lastOp := make(map[int]Opcode)
	for _, ins := range tr.Instrs {
		if prev, ok := lastPC[ins.Warp]; ok && ins.PC <= prev {
			t.Fatal("PC not increasing within warp")
		}
		lastPC[ins.Warp] = ins.PC
		lastOp[ins.Warp] = ins.Op
	}
	for w := 0; w < tr.Warps; w++ {
		if lastOp[w] != OpEXIT {
			t.Fatalf("warp %d does not end with EXIT", w)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	inv := testInvocation(t)
	a, err := Generate(inv, 2000, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(inv, 2000, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Instrs) != len(b.Instrs) {
		t.Fatal("nondeterministic length")
	}
	for i := range a.Instrs {
		if a.Instrs[i] != b.Instrs[i] {
			t.Fatalf("instr %d differs", i)
		}
	}
	c, err := Generate(inv, 2000, 43)
	if err != nil {
		t.Fatal(err)
	}
	same := len(a.Instrs) == len(c.Instrs)
	if same {
		identical := true
		for i := range a.Instrs {
			if a.Instrs[i] != c.Instrs[i] {
				identical = false
				break
			}
		}
		if identical {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

func TestGenerateMixReflectsCharacteristics(t *testing.T) {
	inv := testInvocation(t)
	tr, err := Generate(inv, 50000, 7)
	if err != nil {
		t.Fatal(err)
	}
	var mem, total int
	for _, ins := range tr.Instrs {
		if ins.Op == OpEXIT {
			continue
		}
		total++
		if ins.Op.IsMemory() {
			mem++
		}
	}
	wantFrac := (inv.Chars.ThreadGlobalLoads + inv.Chars.ThreadGlobalStores) / inv.Chars.InstructionCount
	gotFrac := float64(mem) / float64(total)
	if gotFrac < wantFrac*0.6 || gotFrac > wantFrac*1.4 {
		t.Fatalf("memory mix %.3f far from profiled %.3f", gotFrac, wantFrac)
	}
}

func TestGenerateRejectsEmptyInvocation(t *testing.T) {
	inv := &cudamodel.Invocation{}
	if _, err := Generate(inv, 100, 1); err == nil {
		t.Fatal("want error for empty invocation")
	}
}

func TestGenerateRoundTripThroughFormat(t *testing.T) {
	inv := testInvocation(t)
	tr, err := Generate(inv, 3000, 9)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Instrs) != len(tr.Instrs) {
		t.Fatal("round trip lost instructions")
	}
}

func TestReadVersion1TraceDefaultsLines(t *testing.T) {
	// A version-1 file (no line counts on memory ops) must still parse,
	// with the coalescing degree defaulting to 1.
	v1 := "sieve-trace 1\nkernel k\ninvocation 0\ngrid 1 1 1\nblock 32 1 1\nwarps 1\ninstrs 2\n" +
		"0 1000 LDG ffffffff beef\n0 1010 EXIT ffffffff\n"
	tr, err := Read(strings.NewReader(v1))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Instrs[0].Lines != 1 {
		t.Fatalf("v1 memory op lines = %d, want 1", tr.Instrs[0].Lines)
	}
}

func TestReadRejectsBadLineCount(t *testing.T) {
	in := "sieve-trace 2\nkernel k\ninvocation 0\ngrid 1 1 1\nblock 32 1 1\nwarps 1\ninstrs 1\n" +
		"0 1000 LDG ffffffff beef zap\n"
	if _, err := Read(strings.NewReader(in)); err == nil {
		t.Fatal("want error for non-numeric line count")
	}
}

func TestGenerateEmitsCoalescingDegrees(t *testing.T) {
	inv := testInvocation(t)
	tr, err := Generate(inv, 20000, 11)
	if err != nil {
		t.Fatal(err)
	}
	var memOps, linesSum int
	for _, ins := range tr.Instrs {
		if ins.Op.IsMemory() {
			memOps++
			if ins.Lines < 1 || ins.Lines > 32 {
				t.Fatalf("lines = %d", ins.Lines)
			}
			linesSum += ins.Lines
		}
	}
	if memOps == 0 {
		t.Skip("no memory ops in this trace")
	}
	// The mean degree should be near the profiled 32×transactions/accesses.
	want := 32 * inv.Chars.CoalescedGlobalLoads / inv.Chars.ThreadGlobalLoads
	got := float64(linesSum) / float64(memOps)
	if got < want*0.5 || got > want*2+1 {
		t.Fatalf("mean coalescing degree %.1f far from profiled %.1f", got, want)
	}
}
