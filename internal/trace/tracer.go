package trace

import (
	"fmt"
	"math/rand"

	"github.com/gpusampling/sieve/internal/cudamodel"
)

// DefaultMaxWarpInstrs caps generated traces. Representative kernel
// invocations routinely execute billions of thread instructions; tracing a
// bounded prefix per warp keeps trace files and simulation time manageable
// while preserving the instruction mix (the paper's PKP observation that
// per-kernel IPC converges quickly justifies prefix simulation).
const DefaultMaxWarpInstrs = 100000

// Generate synthesizes the SASS-like trace of one kernel invocation,
// standing in for the modified Accel-sim/NVBit tracer. The instruction mix,
// divergence, memory footprint and address locality are derived from the
// invocation's characteristics and hidden behaviour; generation is
// deterministic in (invocation, seed).
//
// maxWarpInstrs caps the total traced warp instructions (≤ 0 selects
// DefaultMaxWarpInstrs).
func Generate(inv *cudamodel.Invocation, maxWarpInstrs int, seed int64) (*Trace, error) {
	if inv.Chars.InstructionCount <= 0 {
		return nil, fmt.Errorf("trace: invocation %d has no instructions", inv.Index)
	}
	if maxWarpInstrs <= 0 {
		maxWarpInstrs = DefaultMaxWarpInstrs
	}
	rng := rand.New(rand.NewSource(seed ^ int64(inv.Index)*0x9E3779B9))

	totalWarpInstrs := int(inv.Chars.InstructionCount / cudamodel.WarpSize)
	if totalWarpInstrs < 1 {
		totalWarpInstrs = 1
	}
	if totalWarpInstrs > maxWarpInstrs {
		totalWarpInstrs = maxWarpInstrs
	}
	// Trace a bounded number of warps, each with a proportional share of
	// the stream; at least one warp and at least a few instructions each.
	warps := int(inv.Warps())
	const maxTracedWarps = 256
	if warps > maxTracedWarps {
		warps = maxTracedWarps
	}
	if warps < 1 {
		warps = 1
	}
	perWarp := totalWarpInstrs / warps
	if perWarp < 4 {
		perWarp = 4
	}

	c := &inv.Chars
	instr := c.InstructionCount
	// Per-instruction emission probabilities from the profiled mix.
	pLoad := c.ThreadGlobalLoads / instr
	pStore := c.ThreadGlobalStores / instr
	pSharedLoad := c.ThreadSharedLoads / instr
	pSharedStore := c.ThreadSharedStores / instr
	pBranch := 0.05
	pTensor := inv.Hidden.TensorFraction * 0.5
	pFP := inv.Hidden.FP32Fraction * 0.6

	// Coalescing degree: how many 128-byte lines a warp's 32 lanes touch per
	// global access, derived from the profiled transaction-per-access ratio.
	loadLines := coalescingLines(c.CoalescedGlobalLoads, c.ThreadGlobalLoads)
	storeLines := coalescingLines(c.CoalescedGlobalStores, c.ThreadGlobalStores)

	// Address stream: a working set reused with probability ≈ CacheLocality,
	// fresh streaming addresses otherwise.
	workingSet := uint64(inv.Hidden.L2WorkingSet)
	if workingSet < 4096 {
		workingSet = 4096
	}
	const lineBytes = 128
	divergedMask := uint32(0xFFFF) // half the lanes active
	fullMask := uint32(0xFFFFFFFF)

	t := &Trace{
		Kernel:     inv.Kernel,
		Invocation: inv.Index,
		Grid:       inv.Grid,
		Block:      inv.Block,
		Warps:      warps,
	}
	t.Instrs = make([]Instr, 0, warps*perWarp+warps)

	stream := uint64(1 << 32) // streaming region base
	for w := 0; w < warps; w++ {
		pc := uint64(0x1000)
		base := uint64(w) * workingSet / uint64(warps)
		// Recently-touched lines of this warp: reuse draws re-touch one of
		// them, so the trace's realized cache hit rate tracks the hidden
		// locality instead of depending on working-set geometry.
		var hot [8]uint64
		hotN := 0
		for i := 0; i < perWarp; i++ {
			mask := fullMask
			if c.DivergenceEfficiency < 1 && rng.Float64() > c.DivergenceEfficiency {
				mask = divergedMask
			}
			ins := Instr{Warp: w, PC: pc, ActiveMask: mask}
			r := rng.Float64()
			switch {
			case r < pLoad:
				ins.Op = OpLDG
				ins.Addr = memAddr(rng, base, workingSet, &stream, hot[:], &hotN, inv.Hidden.CacheLocality, lineBytes)
				ins.Lines = jitterLines(rng, loadLines)
			case r < pLoad+pStore:
				ins.Op = OpSTG
				ins.Addr = memAddr(rng, base, workingSet, &stream, hot[:], &hotN, inv.Hidden.CacheLocality, lineBytes)
				ins.Lines = jitterLines(rng, storeLines)
			case r < pLoad+pStore+pSharedLoad:
				ins.Op = OpLDS
				ins.Addr = uint64(rng.Intn(48 << 10))
			case r < pLoad+pStore+pSharedLoad+pSharedStore:
				ins.Op = OpSTS
				ins.Addr = uint64(rng.Intn(48 << 10))
			case r < pLoad+pStore+pSharedLoad+pSharedStore+pBranch:
				ins.Op = OpBRA
			case rng.Float64() < pTensor:
				ins.Op = OpHMMA
			case rng.Float64() < pFP:
				ins.Op = OpFFMA
			default:
				ins.Op = OpIMAD
			}
			t.Instrs = append(t.Instrs, ins)
			pc += 16
		}
		t.Instrs = append(t.Instrs, Instr{Warp: w, PC: pc, Op: OpEXIT, ActiveMask: fullMask})
	}
	return t, t.Validate()
}

// coalescingLines converts the profiled transactions-per-thread-access ratio
// into lines touched per warp access (32 lanes), clamped to [1, 32].
func coalescingLines(transactions, accesses float64) int {
	if accesses <= 0 || transactions <= 0 {
		return 1
	}
	lines := int(32*transactions/accesses + 0.5)
	if lines < 1 {
		lines = 1
	}
	if lines > 32 {
		lines = 32
	}
	return lines
}

// jitterLines perturbs the coalescing degree by ±1 line to avoid a perfectly
// uniform stream.
func jitterLines(rng *rand.Rand, lines int) int {
	lines += rng.Intn(3) - 1
	if lines < 1 {
		return 1
	}
	if lines > 32 {
		return 32
	}
	return lines
}

// memAddr draws a global address: with probability locality the warp
// re-touches one of its recently used lines (true temporal reuse), otherwise
// it touches a fresh line — within its working-set slice or, rarely, a
// streaming region. Every address is recorded in the warp's hot set.
func memAddr(rng *rand.Rand, base, workingSet uint64, stream *uint64, hot []uint64, hotN *int, locality float64, lineBytes uint64) uint64 {
	if *hotN > 0 && rng.Float64() < locality {
		return hot[rng.Intn(*hotN)]
	}
	var addr uint64
	if rng.Float64() < 0.7 {
		span := workingSet
		if span < lineBytes {
			span = lineBytes
		}
		addr = base + uint64(rng.Int63n(int64(span)))/lineBytes*lineBytes
	} else {
		*stream += lineBytes
		addr = *stream
	}
	if *hotN < len(hot) {
		hot[*hotN] = addr
		*hotN++
	} else {
		hot[rng.Intn(len(hot))] = addr
	}
	return addr
}
