package workloads

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/gpusampling/sieve/internal/cudamodel"
)

// minScaledInvocations is the floor on generated invocation counts when a
// scale factor would otherwise shrink a workload into degeneracy: scaled
// workloads keep at least this many invocations (or their full count if
// smaller). Traditional-suite workloads with tens of invocations are thus
// always generated in full.
const minScaledInvocations = 300

// kernelClass is a kernel's invocation-behaviour class.
type kernelClass int

const (
	classConstant  kernelClass = iota // identical instruction count every invocation (Tier-1)
	classLowVar                       // small CoV around a base count (Tier-2)
	classMulti                        // multi-modal counts (Tier-3, KDE-splittable)
	classHeavyTail                    // log-spread counts (gst's dominant kernel)
)

// ctaSizes are the CTA (thread-block) sizes kernels draw from.
var ctaSizes = []int32{64, 128, 192, 256, 512, 1024}

// genKernel carries all per-kernel generation parameters.
type genKernel struct {
	name        string
	class       kernelClass
	count       int // invocations of this kernel
	baseInstr   float64
	covTarget   float64   // classLowVar: instruction-count CoV
	modeScales  []float64 // classMulti: mode means relative to baseInstr
	modeWeights []float64 // classMulti: cumulative selection weights
	modeJitter  float64   // classMulti: within-mode relative jitter

	workPerThread float64 // instructions per thread
	dominantCTA   int32
	altCTA        int32

	loadFrac   float64 // thread global loads per instruction
	storeFrac  float64
	sharedFrac float64
	localFrac  float64
	atomicFrac float64
	coalesce   float64 // thread accesses per coalesced transaction
	divergence float64 // base divergence efficiency

	hot          bool    // compute-bound, cache-resident kernel
	locality     float64 // base hidden cache locality
	rowLocality  float64
	fp32         float64
	tensor       float64
	bankConflict float64
	wsPerByte    float64 // unique fraction of touched bytes resident in L2
	wsBytes      float64 // per-kernel working set derived from wsPerByte
	straddleWS   float64 // if > 0, fixed working set (L2Straddle workloads)
}

// Generate synthesizes the workload described by spec at the given scale
// factor (0 < scale ≤ 1). Scale multiplies the invocation count — the paper's
// Table I counts are themselves caps on much longer runs, so scaling
// preserves distributional shape while keeping experiments laptop-sized.
// Generation is fully deterministic in (spec, scale).
func Generate(spec Spec, scale float64) (*cudamodel.Workload, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if scale <= 0 || scale > 1 {
		return nil, fmt.Errorf("workloads: scale %g outside (0, 1]", scale)
	}
	rng := rand.New(rand.NewSource(spec.Seed))

	total := int(math.Round(float64(spec.FullInvocations) * scale))
	if floor := min(spec.FullInvocations, minScaledInvocations); total < floor {
		total = floor
	}
	if total < spec.Kernels {
		total = spec.Kernels
	}

	kernels := planKernels(&spec, total, rng)
	invs := emitInvocations(&spec, kernels, rng)
	order := interleave(kernels, rng)

	w := &cudamodel.Workload{Name: spec.Name, Suite: spec.Suite}
	w.Invocations = make([]cudamodel.Invocation, 0, len(order))
	for globalIdx, slot := range order {
		inv := invs[slot.kernel][slot.seq]
		inv.Index = globalIdx
		inv.Seq = slot.seq
		w.Invocations = append(w.Invocations, inv)
	}
	if err := w.Validate(); err != nil {
		return nil, fmt.Errorf("workloads: generated workload invalid: %w", err)
	}
	return w, nil
}

// planKernels decides per-kernel invocation counts, classes and parameters.
func planKernels(spec *Spec, total int, rng *rand.Rand) []genKernel {
	counts := zipfCounts(spec.Kernels, total, spec.Skew, rng)

	kernels := make([]genKernel, spec.Kernels)
	for i := range kernels {
		kernels[i] = genKernel{
			name:  fmt.Sprintf("%s_kernel_%02d", spec.Name, i),
			count: counts[i],
		}
	}

	assignClasses(spec, kernels, total, rng)

	instrLo, instrHi := spec.InstrLo, spec.InstrHi
	if instrLo == 0 {
		instrLo = 1e7
	}
	if instrHi == 0 {
		instrHi = 5e8
	}
	// Uniformity narrows the across-kernel spread of the visible ratio
	// features toward a common center.
	u := spec.Uniformity
	span := func(diverseLo, diverseHi, tightLo, tightHi float64) float64 {
		lo := diverseLo + (tightLo-diverseLo)*u
		hi := diverseHi + (tightHi-diverseHi)*u
		return lo + rng.Float64()*(hi-lo)
	}
	for i := range kernels {
		k := &kernels[i]
		k.baseInstr = logUniform(rng, instrLo, instrHi)
		k.workPerThread = logUniform(rng, 100+400*u, 3000-2200*u)
		k.dominantCTA = ctaSizes[rng.Intn(len(ctaSizes))]
		k.altCTA = ctaSizes[rng.Intn(len(ctaSizes))]
		if k.altCTA == k.dominantCTA {
			// The alternate configuration must be distinguishable so that
			// dominant-CTA selection can skip warm-up invocations.
			k.altCTA = ctaSizes[(rng.Intn(len(ctaSizes)-1)+1+indexOfCTA(k.dominantCTA))%len(ctaSizes)]
		}

		k.loadFrac = span(0.04, 0.34, 0.19, 0.20)
		k.storeFrac = k.loadFrac * span(0.15, 0.55, 0.34, 0.36)
		k.sharedFrac = span(0, 0.25, 0.10, 0.11)
		if rng.Float64() < 0.15*(1-u) {
			k.localFrac = rng.Float64() * 0.02
		}
		if rng.Float64() < 0.1*(1-u) {
			k.atomicFrac = rng.Float64() * 0.005
		}
		k.coalesce = span(2, 16, 7.9, 8.1)
		k.divergence = span(0.6, 1.0, 0.89, 0.91)

		// Hidden cache locality spans nearly the full range: kernels at the
		// top are effectively compute-bound, kernels at the bottom stream
		// from DRAM. Per-instruction cycle cost thus varies ~30× across
		// kernels through a channel the twelve characteristics cannot see.
		// HotCacheFrac of the kernels are pinned compute-bound so their
		// cross-architecture behaviour follows the datapaths.
		if rng.Float64() < spec.HotCacheFrac {
			// Truly compute-bound: the residual DRAM traffic is far below the
			// issue bound on both architectures, and the instruction count is
			// boosted so these kernels still carry a meaningful share of the
			// workload's cycles.
			k.hot = true
			k.locality = 0.985 + rng.Float64()*0.01
			k.baseInstr *= 8 * logUniform(rng, 0.7, 1.4)
		} else {
			// Capped below the compute/memory crossover on both
			// architectures, so a kernel's boundedness is stable across them.
			k.locality = 0.45 + rng.Float64()*0.48
		}
		k.rowLocality = 0.5 + rng.Float64()*0.5
		k.fp32 = spec.FP32Lo + rng.Float64()*(spec.FP32Hi-spec.FP32Lo)
		if spec.TensorFrac > 0 {
			// Roughly half the kernels of a tensor-heavy workload use the
			// tensor pipes (GEMM/conv); the rest are element-wise glue.
			if rng.Float64() < 0.5 {
				k.tensor = spec.TensorFrac * (0.7 + rng.Float64()*0.6)
			}
		}
		k.bankConflict = 1
		if k.sharedFrac > 0.1 && rng.Float64() < 0.3 {
			k.bankConflict = 1 + rng.Float64()*4
		}
		k.wsPerByte = 0.02 + rng.Float64()*0.2
		if k.hot {
			// Cache-resident by construction: a working set that never spills
			// the L2, whatever the instruction count.
			k.wsPerByte = 2e-4 * (0.5 + rng.Float64())
		}
		// The working set is a per-kernel property (its data structures),
		// not a per-invocation one: invocations reuse the same buffers.
		baseTransactions := k.baseInstr * k.loadFrac * 1.3 / k.coalesce
		k.wsBytes = clampL2Band(baseTransactions * 32 * k.wsPerByte)

		switch k.class {
		case classLowVar:
			// Squared-uniform draw biases kernels toward low variability:
			// most real kernels vary only slightly (Fig. 2's large Tier-2
			// share even at θ = 0.1).
			u := rng.Float64()
			k.covTarget = spec.LowVarCoVLo + u*u*(spec.LowVarCoVHi-spec.LowVarCoVLo)
		case classMulti:
			nModes := 2 + rng.Intn(2)
			spread := 1.8 + rng.Float64()*1.4
			k.modeScales = make([]float64, nModes)
			k.modeWeights = make([]float64, nModes)
			cum := 0.0
			for m := 0; m < nModes; m++ {
				k.modeScales[m] = math.Pow(spread, float64(m))
				cum += 0.3 + rng.Float64()
				k.modeWeights[m] = cum
			}
			for m := range k.modeWeights {
				k.modeWeights[m] /= cum
			}
			k.modeJitter = 0.02 + rng.Float64()*0.05
		}
	}

	if spec.GiantKernels > 0 {
		markGiants(spec, kernels, rng)
	}

	if spec.L2Straddle {
		// Hot kernels (by invocation count) carry working sets between the
		// Ampere and Turing L2 capacities.
		idx := make([]int, len(kernels))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return kernels[idx[a]].count > kernels[idx[b]].count })
		hot := len(kernels) / 3
		if hot == 0 {
			hot = 1
		}
		for _, i := range idx[:hot] {
			kernels[i].straddleWS = 5.05*(1<<20) + rng.Float64()*0.4*(1<<20)
			kernels[i].locality = 0.85 + rng.Float64()*0.1
		}
	}

	if spec.DominantInvocation {
		// gst: the busiest kernel becomes heavy-tailed; emitInvocations makes
		// its largest invocation dominate execution time.
		maxI := 0
		for i := range kernels {
			if kernels[i].count > kernels[maxI].count {
				maxI = i
			}
		}
		kernels[maxI].class = classHeavyTail
		// gst's dominant kernel is compute-heavy: the paper's Fig. 9 shows
		// gst markedly faster on Ampere.
		kernels[maxI].hot = true
		kernels[maxI].locality = 0.99
		kernels[maxI].fp32 = spec.FP32Hi
		kernels[maxI].wsPerByte = 5e-8
		kernels[maxI].sharedFrac = 0.02
		kernels[maxI].bankConflict = 1
		d := &kernels[maxI]
		d.wsBytes = clampL2Band(d.baseInstr * d.loadFrac * 1.3 / d.coalesce * 32 * d.wsPerByte)
	}
	return kernels
}

// markGiants boosts the instruction counts of the spec's giant kernels.
// Giants are chosen among the busier kernels (so their strata hold many
// invocations and sampling them stays cheap) and keep a non-constant class
// so their own counts spread across the magnitude axis.
func markGiants(spec *Spec, kernels []genKernel, rng *rand.Rand) {
	idx := make([]int, len(kernels))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return kernels[idx[a]].count > kernels[idx[b]].count })
	// Skip the single busiest kernel: giants with mid-rank counts keep the
	// invocation-count-to-cycle-share mismatch that confuses count
	// weighting.
	start := 1
	if len(idx) <= spec.GiantKernels {
		start = 0
	}
	marked := 0
	for _, i := range idx[start:] {
		if marked == spec.GiantKernels {
			break
		}
		k := &kernels[i]
		k.baseInstr *= spec.GiantBoost * logUniform(rng, 0.5, 2)
		if k.class == classConstant {
			k.class = classLowVar
			u := rng.Float64()
			k.covTarget = spec.LowVarCoVLo + u*u*(spec.LowVarCoVHi-spec.LowVarCoVLo)
		}
		marked++
	}
}

// assignClasses distributes kernel classes to approximate the spec's
// invocation-fraction targets, assigning the busiest kernels first.
func assignClasses(spec *Spec, kernels []genKernel, total int, rng *rand.Rand) {
	idx := make([]int, len(kernels))
	for i := range idx {
		idx[i] = i
	}
	// Shuffle, then stable-sort by count so ties break randomly but
	// deterministically.
	rng.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
	sort.SliceStable(idx, func(a, b int) bool { return kernels[idx[a]].count > kernels[idx[b]].count })

	t1Budget := int(math.Round(spec.Tier1Frac * float64(total)))
	t3Budget := int(math.Round(spec.Tier3Frac * float64(total)))
	for _, i := range idx {
		k := &kernels[i]
		switch {
		case t3Budget > 0 && k.count <= t3Budget+t3Budget/2:
			k.class = classMulti
			t3Budget -= k.count
		case t1Budget > 0 && k.count <= t1Budget+t1Budget/2:
			k.class = classConstant
			t1Budget -= k.count
		default:
			k.class = classLowVar
		}
	}
	// Guarantee at least one Tier-3 kernel when requested: multi-modality
	// needs at least a handful of invocations to show.
	if spec.Tier3Frac > 0 {
		hasMulti := false
		for i := range kernels {
			if kernels[i].class == classMulti && kernels[i].count >= 4 {
				hasMulti = true
				break
			}
		}
		if !hasMulti {
			best := 0
			for i := range kernels {
				if kernels[i].count > kernels[best].count {
					best = i
				}
			}
			kernels[best].class = classMulti
		}
	}
}

// emitInvocations generates each kernel's invocations in per-kernel sequence
// order (Index is assigned later by interleave).
func emitInvocations(spec *Spec, kernels []genKernel, rng *rand.Rand) [][]cudamodel.Invocation {
	out := make([][]cudamodel.Invocation, len(kernels))
	for ki := range kernels {
		k := &kernels[ki]
		invs := make([]cudamodel.Invocation, k.count)
		rampCount := 0
		if k.class != classConstant && spec.RampFrac > 0 {
			rampCount = int(math.Ceil(spec.RampFrac * float64(k.count)))
		}
		for j := 0; j < k.count; j++ {
			instr := instructionCount(k, j, rng)
			warm := 1.0
			if j < rampCount {
				// Warm-up ramp: earliest invocations run reduced problem
				// sizes, climbing linearly back to full scale, with caches
				// and row buffers warming alongside.
				warm = float64(j+1) / float64(rampCount+1)
				instr *= spec.RampScale + (1-spec.RampScale)*warm
			}
			invs[j] = buildInvocation(spec, k, instr, warm, rng)
		}
		if k.class == classHeavyTail {
			inflateDominant(invs)
		}
		out[ki] = invs
	}
	return out
}

// instructionCount draws the invocation's dynamic instruction count per the
// kernel's class.
func instructionCount(k *genKernel, seq int, rng *rand.Rand) float64 {
	switch k.class {
	case classConstant:
		return k.baseInstr
	case classLowVar:
		// Clipped Gaussian around the base with the target CoV.
		z := rng.NormFloat64()
		if z > 2.5 {
			z = 2.5
		} else if z < -2.5 {
			z = -2.5
		}
		v := k.baseInstr * (1 + k.covTarget*z)
		if v < k.baseInstr*0.05 {
			v = k.baseInstr * 0.05
		}
		return v
	case classMulti:
		u := rng.Float64()
		mode := len(k.modeScales) - 1
		for m, w := range k.modeWeights {
			if u <= w {
				mode = m
				break
			}
		}
		jitter := 1 + k.modeJitter*rng.NormFloat64()
		if jitter < 0.5 {
			jitter = 0.5
		}
		return k.baseInstr * k.modeScales[mode] * jitter
	case classHeavyTail:
		// Log-uniform over three decades; each invocation lands in its own
		// stratum under any reasonable θ.
		return k.baseInstr * math.Pow(10, rng.Float64()*3)
	}
	return k.baseInstr
}

// inflateDominant scales the largest invocation of a heavy-tailed kernel so
// that it accounts for roughly 85% of the kernel's (and thus most of the
// workload's) execution time, per the paper's description of gst.
func inflateDominant(invs []cudamodel.Invocation) {
	if len(invs) == 0 {
		return
	}
	maxJ, sum := 0, 0.0
	for j := range invs {
		ic := invs[j].Chars.InstructionCount
		sum += ic
		if ic > invs[maxJ].Chars.InstructionCount {
			maxJ = j
		}
	}
	rest := sum - invs[maxJ].Chars.InstructionCount
	target := rest * 5.6667 // d/(d+rest) ≈ 0.85
	if invs[maxJ].Chars.InstructionCount < target {
		scaleChars(&invs[maxJ], target/invs[maxJ].Chars.InstructionCount)
	}
}

// scaleChars multiplies all work-proportional characteristics of an
// invocation by f, keeping ratios (and thus per-instruction behaviour)
// intact.
func scaleChars(inv *cudamodel.Invocation, f float64) {
	c := &inv.Chars
	c.InstructionCount *= f
	c.CoalescedGlobalLoads *= f
	c.CoalescedGlobalStores *= f
	c.CoalescedLocalLoads *= f
	c.ThreadGlobalLoads *= f
	c.ThreadGlobalStores *= f
	c.ThreadLocalLoads *= f
	c.ThreadSharedLoads *= f
	c.ThreadSharedStores *= f
	c.ThreadGlobalAtomics *= f
	blocks := math.Ceil(c.ThreadBlocks * f)
	if blocks > math.MaxInt32 {
		blocks = math.MaxInt32
	}
	c.ThreadBlocks = blocks
	inv.Grid = cudamodel.Dim3{X: int32(blocks), Y: 1, Z: 1}
	// The working set is left unscaled: the dominant invocation is a tiled
	// computation whose cache-resident reuse footprint does not grow with
	// the amount of work.
}

// buildInvocation derives the full characteristic vector and hidden state
// for one invocation with the given instruction count. warm ∈ (0, 1] is the
// warm-up progress: 1 for steady-state invocations, smaller during the ramp
// window.
func buildInvocation(spec *Spec, k *genKernel, instr, warm float64, rng *rand.Rand) cudamodel.Invocation {
	// Warm-up invocations run reduced problem sizes and therefore launch
	// with the kernel's alternate CTA configuration; steady-state
	// invocations overwhelmingly use the dominant one.
	cta := k.dominantCTA
	if warm < 1 {
		cta = k.altCTA
	} else if rng.Float64() > 0.9 {
		cta = k.altCTA
	}
	workJitter := 1 + 0.035*spec.Uniformity*rng.NormFloat64()
	if workJitter < 0.3 {
		workJitter = 0.3
	}
	threads := instr / (k.workPerThread * workJitter)
	blocks := math.Ceil(threads / float64(cta))
	if blocks < 1 {
		blocks = 1
	}
	if blocks > math.MaxInt32 {
		blocks = math.MaxInt32
	}

	// Per-invocation input variation perturbs the visible ratios. In the
	// uniform (challenging) regime this within-kernel spread exceeds the
	// narrowed across-kernel spread, so the standardized feature space
	// cannot tell kernels apart — while per-instruction execution cost
	// still differs kernel-to-kernel through hidden locality.
	ratioJitter := 0.035 * spec.Uniformity
	perturb := func() float64 {
		m := 1 + ratioJitter*rng.NormFloat64()
		if m < 0.3 {
			m = 0.3
		}
		return m
	}
	threadLoads := instr * k.loadFrac * perturb()
	threadStores := instr * k.storeFrac * perturb()
	shared := instr * k.sharedFrac * perturb()
	coalesce := k.coalesce * perturb()
	if coalesce < 1 {
		coalesce = 1
	}
	div := k.divergence * (1 + (0.01+2*ratioJitter/10)*rng.NormFloat64())
	if div > 1 {
		div = 1
	} else if div < 0.05 {
		div = 0.05
	}

	chars := cudamodel.Characteristics{
		CoalescedGlobalLoads:  threadLoads / coalesce,
		CoalescedGlobalStores: threadStores / coalesce,
		CoalescedLocalLoads:   instr * k.localFrac / coalesce,
		ThreadGlobalLoads:     threadLoads,
		ThreadGlobalStores:    threadStores,
		ThreadLocalLoads:      instr * k.localFrac,
		ThreadSharedLoads:     shared,
		ThreadSharedStores:    shared * 0.4,
		ThreadGlobalAtomics:   instr * k.atomicFrac,
		InstructionCount:      instr,
		DivergenceEfficiency:  div,
		ThreadBlocks:          blocks,
	}

	// Hidden cold-start: cache and row locality recover from ColdScale to
	// full across the warm-up window. Profilers never see this.
	coldMul := 1.0
	if warm < 1 && spec.ColdScale > 0 && spec.ColdScale < 1 {
		coldMul = spec.ColdScale + (1-spec.ColdScale)*warm
	}
	// Per-invocation jitter perturbs the miss rate multiplicatively, so
	// high-locality kernels see proportional (not explosive) cycle noise.
	miss := (1 - k.locality) * (1 + 2*spec.LocalityJitter*rng.NormFloat64())
	// Larger invocations of a kernel stream proportionally more data per
	// instruction (the reuse footprint is fixed per kernel): per-instruction
	// cost grows mildly with problem size. This is what makes coarse strata
	// (large θ) pay an accuracy price — merged instruction-count modes no
	// longer share a CPI.
	if k.baseInstr > 0 && !k.hot {
		// Hot kernels are exempt: their reuse footprint is fixed.
		miss *= math.Pow(instr/k.baseInstr, 0.3)
	}
	if miss < 0.005 {
		miss = 0.005
	}
	if miss > 0.98 {
		miss = 0.98
	}
	locality := (1 - miss) * coldMul
	if k.hot && locality < 0.85 {
		// Cache-resident kernels re-warm their small footprint within the
		// first tile pass: the cold penalty is bounded.
		locality = 0.85
	}
	rowMul := (1 + coldMul) / 2 // row buffers warm faster than caches
	ws := k.straddleWS
	if ws == 0 {
		ws = k.wsBytes
	}
	hidden := cudamodel.Hidden{
		CacheLocality:      clamp01(locality),
		RowLocality:        clamp01((k.rowLocality + 0.02*rng.NormFloat64()) * rowMul),
		FP32Fraction:       k.fp32,
		TensorFraction:     k.tensor,
		BankConflictFactor: k.bankConflict,
		L2WorkingSet:       ws,
	}

	return cudamodel.Invocation{
		Kernel: k.name,
		Grid:   cudamodel.Dim3{X: int32(blocks), Y: 1, Z: 1},
		Block:  cudamodel.Dim3{X: cta, Y: 1, Z: 1},
		Chars:  chars,
		Hidden: hidden,
	}
}

// slot identifies one invocation in the per-kernel emission order.
type slot struct {
	kernel int
	seq    int
}

// interleave merges the per-kernel invocation streams into one chronological
// order that models iterative program structure: invocation j of a kernel
// with n invocations lands near fractional position j/n of the run, with
// random jitter. Per-kernel order is preserved.
func interleave(kernels []genKernel, rng *rand.Rand) []slot {
	type keyed struct {
		slot
		key float64
	}
	var all []keyed
	for ki := range kernels {
		n := float64(kernels[ki].count)
		for j := 0; j < kernels[ki].count; j++ {
			all = append(all, keyed{
				slot: slot{kernel: ki, seq: j},
				key:  (float64(j) + rng.Float64()) / n,
			})
		}
	}
	sort.SliceStable(all, func(a, b int) bool { return all[a].key < all[b].key })
	out := make([]slot, len(all))
	for i, k := range all {
		out[i] = k.slot
	}
	return out
}

// zipfCounts splits total invocations across n kernels with a Zipf-like
// skew (weight ∝ 1/rank^skew), guaranteeing every kernel at least one
// invocation. The rank order is shuffled so kernel index does not encode
// popularity.
func zipfCounts(n, total int, skew float64, rng *rand.Rand) []int {
	weights := make([]float64, n)
	var sum float64
	for i := range weights {
		weights[i] = 1 / math.Pow(float64(i+1), skew)
		sum += weights[i]
	}
	rng.Shuffle(n, func(a, b int) { weights[a], weights[b] = weights[b], weights[a] })

	counts := make([]int, n)
	assigned := 0
	for i := range counts {
		counts[i] = int(float64(total) * weights[i] / sum)
		if counts[i] < 1 {
			counts[i] = 1
		}
		assigned += counts[i]
	}
	// Distribute rounding remainder (or claw back overshoot) on the largest
	// kernels.
	for assigned != total {
		step := 1
		if assigned > total {
			step = -1
		}
		best := 0
		for i := range counts {
			if counts[i] > counts[best] {
				best = i
			}
		}
		if step < 0 && counts[best] <= 1 {
			break
		}
		counts[best] += step
		assigned += step
	}
	return counts
}

// clampL2Band keeps accidental working sets away from the cache-capacity
// cliffs: out of the band between the two L2 capacities (only L2Straddle
// workloads are meant to behave differently across architectures there) and
// away from the immediate neighborhood of either cliff.
func clampL2Band(ws float64) float64 {
	const bandLo, bandHi = 4.8e6, 6.2e6
	if ws > bandLo && ws < bandHi {
		if ws-bandLo < bandHi-ws {
			return bandLo
		}
		return bandHi
	}
	return ws
}

// indexOfCTA returns the position of size within ctaSizes (0 if absent).
func indexOfCTA(size int32) int {
	for i, s := range ctaSizes {
		if s == size {
			return i
		}
	}
	return 0
}

// logUniform draws from a log-uniform distribution on [lo, hi].
func logUniform(rng *rand.Rand, lo, hi float64) float64 {
	return lo * math.Exp(rng.Float64()*math.Log(hi/lo))
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
