package workloads

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestPropertyGenerateInvariants: any catalog workload at any scale yields a
// valid workload with the right kernel count and sane per-invocation data.
func TestPropertyGenerateInvariants(t *testing.T) {
	catalog := Catalog()
	f := func(pick uint8, rawScale uint16) bool {
		spec := catalog[int(pick)%len(catalog)]
		scale := 0.002 + float64(rawScale%100)/100*0.028 // 0.002..0.03
		w, err := Generate(spec, scale)
		if err != nil {
			return false
		}
		if w.Validate() != nil {
			return false
		}
		if w.NumKernels() != spec.Kernels {
			return false
		}
		if w.Name != spec.Name || w.Suite != spec.Suite {
			return false
		}
		for i := range w.Invocations {
			inv := &w.Invocations[i]
			c := &inv.Chars
			if c.CoalescedGlobalLoads > c.ThreadGlobalLoads+1e-9 {
				return false
			}
			if inv.Hidden.CacheLocality < 0 || inv.Hidden.CacheLocality > 1 {
				return false
			}
			if inv.Hidden.BankConflictFactor < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyGenerateScaleMonotone: a larger scale never yields fewer
// invocations.
func TestPropertyGenerateScaleMonotone(t *testing.T) {
	spec, err := ByName("nst")
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := 0.002 + rng.Float64()*0.02
		b := a + rng.Float64()*0.02
		wa, err := Generate(spec, a)
		if err != nil {
			return false
		}
		wb, err := Generate(spec, b)
		if err != nil {
			return false
		}
		return wb.NumInvocations() >= wa.NumInvocations()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
