// Package workloads synthesizes the benchmark suites of the paper's
// evaluation (Table I): Parboil, Rodinia, CUDA SDK, Cactus and MLPerf
// inference. The real binaries and their inputs are not available here, so
// each workload is generated from a deterministic per-workload specification
// that reproduces the properties the sampling experiments depend on:
//
//   - the suite structure: kernel counts and invocation counts of Table I;
//   - the per-kernel invocation-behaviour classes that produce the paper's
//     tier mixes (Fig. 2): constant, low-variability, multi-modal and
//     heavy-tailed instruction counts;
//   - execution-order structure (programs iterate: early global positions
//     correspond to early per-kernel invocations, with ramp-up effects);
//   - hidden microarchitectural diversity across kernels and invocations
//     (cache locality, working sets, unit mix) that drives within-cluster
//     cycle-count dispersion for PKS (Fig. 4) while leaving Sieve's
//     per-kernel strata homogeneous;
//   - workload personalities called out by the paper: gst's dominant
//     invocation, lmc/lmr's Ampere-unfriendly working sets, the MLPerf
//     suite's tensor-heavy instruction diversity.
package workloads

import (
	"fmt"
	"sort"
)

// Spec is the deterministic generation recipe for one workload.
type Spec struct {
	// Name and Suite identify the workload per Table I.
	Name  string
	Suite string
	// Kernels is the number of distinct kernels.
	Kernels int
	// FullInvocations is the profiled invocation count at scale 1.0
	// (Table I).
	FullInvocations int
	// Seed drives every random choice for this workload.
	Seed int64

	// Tier1Frac is the target fraction of invocations from constant-count
	// kernels (Tier-1); Tier3Frac from high-variability kernels (Tier-3 at
	// the paper's thresholds). The remainder is low-variability (Tier-2).
	Tier1Frac float64
	Tier3Frac float64
	// LowVarCoVLo/Hi bound the instruction-count CoV of low-variability
	// kernels; where the range sits relative to θ decides how invocations
	// migrate between Tier-2 and Tier-3 as θ changes (Fig. 2).
	LowVarCoVLo, LowVarCoVHi float64
	// Skew is the Zipf-like exponent distributing invocations across
	// kernels; 0 is uniform, larger values concentrate invocations in few
	// kernels.
	Skew float64
	// Uniformity in [0, 1] narrows the across-kernel spread of the
	// *visible* per-instruction ratios (loads, stores, shared traffic,
	// coalescing, divergence, work per thread). At 1 every kernel looks
	// nearly identical per instruction to the twelve profiled
	// characteristics — the feature space collapses to instruction
	// magnitude — while execution time still differs through the hidden
	// state. This is the paper's core diagnosis: microarchitecture-
	// independent characteristics do not capture execution time, so PKS's
	// clusters mix kernels whose cycles differ widely (Fig. 4).
	Uniformity float64
	// InstrLo/InstrHi bound the per-kernel base instruction count
	// (log-uniform). Zero selects the generator defaults. A narrow range
	// makes many kernels overlap in the PKS feature space — more than 20
	// clusters can resolve — which is what makes the Cactus and MLPerf
	// workloads "challenging" in the paper's sense; a wide range keeps the
	// traditional suites separable and easy.
	InstrLo, InstrHi float64

	// LocalityJitter is the per-invocation standard deviation of hidden
	// cache locality around the kernel's base — the dominant source of
	// cycle-count dispersion inside otherwise-identical strata.
	LocalityJitter float64
	// TensorFrac is the typical tensor-pipe work fraction for this
	// workload's kernels (MLPerf inference is tensor-heavy).
	TensorFrac float64
	// FP32Lo/Hi bound the per-kernel FP32-eligible fraction.
	FP32Lo, FP32Hi float64
	// HotCacheFrac is the fraction of kernels whose working set lives in
	// cache (locality ≈ 0.95): these kernels are compute-bound, so their
	// cross-architecture behaviour follows the FP32/tensor datapaths
	// (Ampere-friendly) rather than DRAM bandwidth — the source of the
	// per-workload speedup diversity in Fig. 9.
	HotCacheFrac float64
	// L2Straddle marks workloads (lmc, lmr) whose hot kernels have working
	// sets between the Ampere (5 MB) and Turing (5.5 MB) L2 capacities,
	// making them relatively slower on Ampere (Fig. 9).
	L2Straddle bool
	// DominantInvocation marks gst: one invocation accounts for ~85% of
	// execution time and its kernel's counts are spread so widely that
	// every invocation becomes its own stratum (Fig. 6's outlier).
	DominantInvocation bool
	// RampFrac and RampScale model program warm-up: the earliest RampFrac
	// of each non-constant kernel's invocations have instruction counts
	// scaled from RampScale up to 1. This is what makes PKS's
	// first-chronological representative systematically unrepresentative
	// (Fig. 5).
	RampFrac  float64
	RampScale float64
	// ColdScale models the hidden cache warm-up that accompanies the ramp:
	// at the very first invocation of a non-constant kernel, cache and
	// DRAM-row locality are scaled by ColdScale, recovering linearly to 1
	// across the ramp window. This is *invisible* to the twelve profiled
	// characteristics — exactly the microarchitecture-dependent behaviour
	// PKS's clustering cannot separate — so PKS's first-chronological
	// representatives run systematically cold at every k, while Sieve's
	// dominant-CTA selection lands on post-warm-up invocations. 0 (or 1)
	// disables the effect.
	ColdScale float64
	// GiantKernels marks this many kernels as "giant" (GEMM-like): their
	// instruction counts are boosted by roughly GiantBoost. Giants stretch
	// the standardized PKS feature space so that the remaining invocations
	// compress into a blob that 20 clusters cannot resolve — the
	// curse-of-dimensionality failure Section VI describes, and the source
	// of PKS's large within-cluster cycle dispersion (Fig. 4).
	GiantKernels int
	GiantBoost   float64
}

// Validate checks a spec's internal consistency.
func (s *Spec) Validate() error {
	switch {
	case s.Name == "" || s.Suite == "":
		return fmt.Errorf("workloads: spec missing name or suite")
	case s.Kernels <= 0:
		return fmt.Errorf("workloads: %s: non-positive kernel count", s.Name)
	case s.FullInvocations < s.Kernels:
		return fmt.Errorf("workloads: %s: fewer invocations (%d) than kernels (%d)",
			s.Name, s.FullInvocations, s.Kernels)
	case s.Tier1Frac < 0 || s.Tier3Frac < 0 || s.Tier1Frac+s.Tier3Frac > 1:
		return fmt.Errorf("workloads: %s: invalid tier fractions %g/%g", s.Name, s.Tier1Frac, s.Tier3Frac)
	case s.LowVarCoVLo < 0 || s.LowVarCoVHi < s.LowVarCoVLo:
		return fmt.Errorf("workloads: %s: invalid low-var CoV range [%g, %g]", s.Name, s.LowVarCoVLo, s.LowVarCoVHi)
	case s.LocalityJitter < 0:
		return fmt.Errorf("workloads: %s: negative locality jitter", s.Name)
	case s.RampFrac < 0 || s.RampFrac > 1:
		return fmt.Errorf("workloads: %s: ramp fraction %g outside [0, 1]", s.Name, s.RampFrac)
	case s.RampFrac > 0 && (s.RampScale <= 0 || s.RampScale > 1):
		return fmt.Errorf("workloads: %s: ramp scale %g outside (0, 1]", s.Name, s.RampScale)
	case s.ColdScale < 0 || s.ColdScale > 1:
		return fmt.Errorf("workloads: %s: cold scale %g outside [0, 1]", s.Name, s.ColdScale)
	case s.InstrLo < 0 || s.InstrHi < s.InstrLo:
		return fmt.Errorf("workloads: %s: invalid instruction range [%g, %g]", s.Name, s.InstrLo, s.InstrHi)
	case s.Uniformity < 0 || s.Uniformity > 1:
		return fmt.Errorf("workloads: %s: uniformity %g outside [0, 1]", s.Name, s.Uniformity)
	case s.HotCacheFrac < 0 || s.HotCacheFrac > 1:
		return fmt.Errorf("workloads: %s: hot-cache fraction %g outside [0, 1]", s.Name, s.HotCacheFrac)
	case s.GiantKernels < 0 || s.GiantKernels >= s.Kernels:
		return fmt.Errorf("workloads: %s: giant kernel count %d outside [0, %d)", s.Name, s.GiantKernels, s.Kernels)
	case s.GiantKernels > 0 && s.GiantBoost <= 1:
		return fmt.Errorf("workloads: %s: giant boost %g must exceed 1", s.Name, s.GiantBoost)
	}
	return nil
}

// Suite name constants.
const (
	SuiteParboil = "Parboil"
	SuiteRodinia = "Rodinia"
	SuiteSDK     = "SDK"
	SuiteCactus  = "Cactus"
	SuiteMLPerf  = "MLPerf"
)

// simple builds a traditional-suite spec: easy to sample, no warm-up ramp,
// little hidden jitter — both Sieve and PKS should be accurate (Fig. 8).
func simple(suite, name string, kernels, invocations int, seed int64) Spec {
	return Spec{
		Name: name, Suite: suite, Kernels: kernels, FullInvocations: invocations, Seed: seed,
		Tier1Frac: 0.6, Tier3Frac: 0, LowVarCoVLo: 0.02, LowVarCoVHi: 0.2,
		Skew: 0.4, LocalityJitter: 0.015, FP32Lo: 0.2, FP32Hi: 0.7,
	}
}

// cactus builds a Cactus-suite spec with the challenging defaults: warm-up
// ramp, meaningful hidden jitter, many kernels.
func cactus(name string, kernels, invocations int, seed int64) Spec {
	return Spec{
		Name: name, Suite: SuiteCactus, Kernels: kernels, FullInvocations: invocations, Seed: seed,
		Tier1Frac: 0.4, Tier3Frac: 0.2, LowVarCoVLo: 0.02, LowVarCoVHi: 0.45,
		Skew: 0.45, LocalityJitter: 0.02, FP32Lo: 0.1, FP32Hi: 0.8,
		Uniformity: 0.85, InstrLo: 6e7, InstrHi: 3e8, HotCacheFrac: 0.15,
		RampFrac: 0.015, RampScale: 0.95, ColdScale: 0.3,
	}
}

// mlperf builds an MLPerf-inference spec: tensor-heavy, diverse instruction
// mix, warm-up ramp.
func mlperf(name string, kernels, invocations int, seed int64) Spec {
	return Spec{
		Name: name, Suite: SuiteMLPerf, Kernels: kernels, FullInvocations: invocations, Seed: seed,
		Tier1Frac: 0.45, Tier3Frac: 0.15, LowVarCoVLo: 0.02, LowVarCoVHi: 0.45,
		Skew: 0.45, LocalityJitter: 0.02, TensorFrac: 0.55, FP32Lo: 0.2, FP32Hi: 0.9,
		Uniformity: 0.85, InstrLo: 5e7, InstrHi: 4e8, HotCacheFrac: 0.3,
		RampFrac: 0.012, RampScale: 0.95, ColdScale: 0.3,
	}
}

// Catalog returns the specification of every workload in Table I, in suite
// order. The returned slice is freshly allocated; callers may modify it.
func Catalog() []Spec {
	specs := []Spec{
		// --- Parboil -----------------------------------------------------
		simple(SuiteParboil, "bfs_ny", 2, 11, 101),
		simple(SuiteParboil, "histo", 4, 252, 102),
		simple(SuiteParboil, "lbm", 1, 3000, 103),
		simple(SuiteParboil, "mri-g", 9, 51, 104),
		simple(SuiteParboil, "stencil", 1, 100, 105),
		// --- Rodinia -----------------------------------------------------
		simple(SuiteRodinia, "cfd", 4, 14003, 201),
		simple(SuiteRodinia, "dwt2d", 4, 10, 202),
		simple(SuiteRodinia, "gaussian", 2, 16382, 203),
		simple(SuiteRodinia, "heartwall", 1, 20, 204),
		simple(SuiteRodinia, "hotspot3d", 1, 100, 205),
		simple(SuiteRodinia, "huffman", 6, 46, 206),
		simple(SuiteRodinia, "lud", 3, 22, 207),
		simple(SuiteRodinia, "nw", 2, 255, 208),
		simple(SuiteRodinia, "srad", 6, 502, 209),
		// --- CUDA SDK ----------------------------------------------------
		simple(SuiteSDK, "blackscholes", 1, 512, 301),
		simple(SuiteSDK, "cholesky", 25, 143, 302),
		simple(SuiteSDK, "gradient", 7, 84, 303),
		simple(SuiteSDK, "dct8x8", 8, 118, 304),
		simple(SuiteSDK, "histogram", 4, 68, 305),
		simple(SuiteSDK, "hsopticalflow", 6, 7576, 306),
		simple(SuiteSDK, "mergesort", 4, 49, 307),
		simple(SuiteSDK, "nvjpeg", 2, 32, 308),
		simple(SuiteSDK, "random", 2, 42, 309),
		simple(SuiteSDK, "sortingnet", 4, 290, 310),
		// --- Cactus ------------------------------------------------------
		cactus("gru", 8, 43837, 401),
		cactus("gst", 15, 175, 402),
		cactus("gms", 14, 92520, 403),
		cactus("lmc", 58, 248548, 404),
		cactus("lmr", 62, 74765, 405),
		cactus("dcg", 59, 414585, 406),
		cactus("lgt", 74, 532707, 407),
		cactus("nst", 50, 1072246, 408),
		cactus("rfl", 57, 206407, 409),
		cactus("spt", 43, 112668, 410),
		// --- MLPerf inference ---------------------------------------------
		mlperf("3d-unet", 20, 113183, 501),
		mlperf("bert", 11, 141964, 502),
		mlperf("resnet50", 20, 78825, 503),
		mlperf("rnnt", 39, 205440, 504),
		mlperf("ssd-mobilenet", 33, 64138, 505),
		mlperf("ssd-resnet34", 26, 57267, 506),
	}

	// Per-workload personalities, matching the behaviours the paper calls
	// out (Section III-B and Fig. 2 discussion, Section V).
	adjust := map[string]func(*Spec){
		// gms and lmr: all invocations Tier-1/2 even at θ = 0.1.
		"gms": func(s *Spec) {
			s.Tier1Frac, s.Tier3Frac = 0.55, 0
			s.LowVarCoVLo, s.LowVarCoVHi = 0.02, 0.08
			s.ColdScale = 0.35
			s.HotCacheFrac = 0
		},
		"lmr": func(s *Spec) {
			s.Tier1Frac, s.Tier3Frac = 0.5, 0
			s.LowVarCoVLo, s.LowVarCoVHi = 0.02, 0.09
			s.L2Straddle = true
			s.ColdScale = 0.4
			s.HotCacheFrac = 0
		},
		// gru and lmc: all Tier-1/2 for θ at 0.5 and above.
		"gru": func(s *Spec) {
			s.Tier1Frac, s.Tier3Frac = 0.35, 0
			s.LowVarCoVLo, s.LowVarCoVHi = 0.12, 0.45
			s.ColdScale = 0.45
			s.HotCacheFrac = 0
		},
		"lmc": func(s *Spec) {
			s.Tier1Frac, s.Tier3Frac = 0.3, 0
			s.LowVarCoVLo, s.LowVarCoVHi = 0.12, 0.48
			s.L2Straddle = true
			s.LocalityJitter = 0.035 // paper: lmc has Sieve's largest cycle CoV (0.2)
			s.ColdScale = 0.45
			s.HotCacheFrac = 0
		},
		// gst: largest Tier-3 fraction (>50%) and the dominant invocation.
		"gst": func(s *Spec) {
			s.Tier1Frac, s.Tier3Frac = 0.1, 0.7
			s.DominantInvocation = true
			s.FP32Lo, s.FP32Hi = 0.6, 0.95 // markedly faster on Ampere (Fig. 9)
			s.HotCacheFrac = 0.55
			s.ColdScale = 0.3
		},
		// dcg and lgt: high Tier-3 shares, strongly Ampere-friendly, large
		// PKS within-cluster dispersion.
		"dcg": func(s *Spec) {
			s.Tier3Frac = 0.3
			s.FP32Lo, s.FP32Hi = 0.55, 0.95
			s.HotCacheFrac = 0.3
			s.ColdScale = 0.4
		},
		"lgt": func(s *Spec) {
			s.Tier3Frac = 0.35
			s.FP32Lo, s.FP32Hi = 0.5, 0.9
			s.HotCacheFrac = 0.4
			s.ColdScale = 0.12
			s.RampFrac = 0.025
		},
		// nst and spt: sizable Tier-3 share; spt is PKS's worst case (60.4%).
		"nst": func(s *Spec) { s.Tier3Frac = 0.3; s.ColdScale = 0.3; s.RampFrac = 0.02; s.HotCacheFrac = 0.3 },
		"spt": func(s *Spec) {
			s.Tier1Frac, s.Tier3Frac = 0.15, 0.35
			s.HotCacheFrac = 0.45
			s.ColdScale = 0.04
			s.RampFrac = 0.025
		},
		// bert and resnet50: all Tier-1/2 at θ ≥ 0.5.
		"bert": func(s *Spec) {
			s.Tier3Frac = 0
			s.LowVarCoVLo, s.LowVarCoVHi = 0.1, 0.45
			s.ColdScale = 0.3
		},
		"resnet50": func(s *Spec) {
			s.Tier3Frac = 0
			s.LowVarCoVLo, s.LowVarCoVHi = 0.08, 0.42
			s.RampFrac = 0.01
			s.ColdScale = 0.3
		},
		// rnnt: Sieve's max MLPerf error (3.2%) and PKS at 46%.
		"rnnt": func(s *Spec) {
			s.Tier1Frac, s.Tier3Frac = 0.2, 0.25
			s.LocalityJitter = 0.035
			s.ColdScale = 0.22
			s.RampFrac = 0.015
		},
		"rfl":           func(s *Spec) { s.ColdScale = 0.1 },
		"3d-unet":       func(s *Spec) { s.RampFrac = 0.01; s.ColdScale = 0.15 },
		"ssd-mobilenet": func(s *Spec) { s.RampFrac = 0.01; s.ColdScale = 0.1 },
		"ssd-resnet34":  func(s *Spec) { s.ColdScale = 0.15 },
		// cfd is the one traditional workload PKS struggles with (23%,
		// Fig. 8): pronounced warm-up behaviour whose cold representatives
		// mislead the count-weighted first-chronological estimator, while
		// Sieve's dominant-CTA selection and CPI weighting absorb it.
		"cfd": func(s *Spec) {
			s.Tier1Frac = 0.25
			s.LowVarCoVLo, s.LowVarCoVHi = 0.1, 0.35
			s.RampFrac, s.RampScale = 0.015, 0.95
			s.ColdScale = 0.08
			s.Uniformity = 0.85
		},
	}
	for i := range specs {
		if f, ok := adjust[specs[i].Name]; ok {
			f(&specs[i])
		}
	}
	return specs
}

// ByName returns the catalog spec with the given workload name.
func ByName(name string) (Spec, error) {
	for _, s := range Catalog() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workloads: unknown workload %q", name)
}

// BySuite returns the catalog specs belonging to the named suite, in catalog
// order. An unknown suite yields an error.
func BySuite(suite string) ([]Spec, error) {
	var out []Spec
	for _, s := range Catalog() {
		if s.Suite == suite {
			out = append(out, s)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("workloads: unknown suite %q", suite)
	}
	return out, nil
}

// Suites returns the distinct suite names in catalog order.
func Suites() []string {
	var out []string
	seen := make(map[string]bool)
	for _, s := range Catalog() {
		if !seen[s.Suite] {
			seen[s.Suite] = true
			out = append(out, s.Suite)
		}
	}
	return out
}

// Names returns all workload names, sorted.
func Names() []string {
	var out []string
	for _, s := range Catalog() {
		out = append(out, s.Name)
	}
	sort.Strings(out)
	return out
}
