package workloads

import (
	"encoding/json"
	"fmt"
	"io"
)

// ReadSpec parses a workload specification from JSON, validating it. All
// Spec fields are available under their Go names (the format is the struct
// itself), so downstream users can model their own applications:
//
//	{
//	  "Name": "myapp", "Suite": "Custom",
//	  "Kernels": 12, "FullInvocations": 50000, "Seed": 7,
//	  "Tier1Frac": 0.3, "Tier3Frac": 0.2,
//	  "LowVarCoVLo": 0.05, "LowVarCoVHi": 0.4,
//	  "Uniformity": 0.8, "LocalityJitter": 0.02
//	}
func ReadSpec(r io.Reader) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("workloads: parse spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// WriteSpec serializes the specification as indented JSON.
func WriteSpec(s Spec, w io.Writer) error {
	if err := s.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
