package workloads

import (
	"bytes"
	"strings"
	"testing"
)

func TestSpecJSONRoundTrip(t *testing.T) {
	orig, err := ByName("rnnt")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSpec(orig, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSpec(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != orig {
		t.Fatalf("round trip changed spec:\n got %+v\nwant %+v", got, orig)
	}
}

func TestReadSpecCustom(t *testing.T) {
	in := `{
	  "Name": "myapp", "Suite": "Custom",
	  "Kernels": 4, "FullInvocations": 1000, "Seed": 7,
	  "Tier1Frac": 0.3, "Tier3Frac": 0.2,
	  "LowVarCoVLo": 0.05, "LowVarCoVHi": 0.4,
	  "Uniformity": 0.8, "LocalityJitter": 0.02
	}`
	s, err := ReadSpec(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "myapp" || s.Kernels != 4 {
		t.Fatalf("spec = %+v", s)
	}
	// The custom spec must generate a valid workload.
	w, err := Generate(s, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if w.NumKernels() != 4 {
		t.Fatalf("kernels = %d", w.NumKernels())
	}
}

func TestReadSpecErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"bad json", `{`},
		{"unknown field", `{"Name": "x", "Suite": "y", "Kernels": 1, "FullInvocations": 2, "WarpWidth": 64}`},
		{"invalid spec", `{"Name": "x", "Suite": "y", "Kernels": 0, "FullInvocations": 2}`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ReadSpec(strings.NewReader(c.in)); err == nil {
				t.Fatal("want error")
			}
		})
	}
}

func TestWriteSpecRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSpec(Spec{}, &buf); err == nil {
		t.Fatal("want error for invalid spec")
	}
}
