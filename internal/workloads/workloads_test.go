package workloads

import (
	"math"
	"math/rand"
	"testing"

	"github.com/gpusampling/sieve/internal/gpu"
	"github.com/gpusampling/sieve/internal/stats"
)

func TestCatalogMatchesTableI(t *testing.T) {
	specs := Catalog()
	if len(specs) != 40 {
		t.Fatalf("catalog has %d workloads, Table I lists 40", len(specs))
	}
	// Spot checks against Table I.
	expect := map[string]struct {
		suite       string
		kernels     int
		invocations int
	}{
		"lbm":      {SuiteParboil, 1, 3000},
		"cfd":      {SuiteRodinia, 4, 14003},
		"cholesky": {SuiteSDK, 25, 143},
		"gru":      {SuiteCactus, 8, 43837},
		"gst":      {SuiteCactus, 15, 175},
		"nst":      {SuiteCactus, 50, 1072246},
		"lgt":      {SuiteCactus, 74, 532707},
		"bert":     {SuiteMLPerf, 11, 141964},
		"rnnt":     {SuiteMLPerf, 39, 205440},
	}
	byName := map[string]Spec{}
	for _, s := range specs {
		byName[s.Name] = s
	}
	for name, e := range expect {
		s, ok := byName[name]
		if !ok {
			t.Fatalf("workload %q missing from catalog", name)
		}
		if s.Suite != e.suite || s.Kernels != e.kernels || s.FullInvocations != e.invocations {
			t.Fatalf("%s: got (%s, %d, %d), want (%s, %d, %d)",
				name, s.Suite, s.Kernels, s.FullInvocations, e.suite, e.kernels, e.invocations)
		}
	}
}

func TestCatalogSpecsValidateAndSeedsUnique(t *testing.T) {
	seeds := map[int64]string{}
	names := map[string]bool{}
	for _, s := range Catalog() {
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if prev, dup := seeds[s.Seed]; dup {
			t.Fatalf("seed %d shared by %s and %s", s.Seed, prev, s.Name)
		}
		seeds[s.Seed] = s.Name
		if names[s.Name] {
			t.Fatalf("duplicate workload name %s", s.Name)
		}
		names[s.Name] = true
	}
}

func TestByNameAndBySuite(t *testing.T) {
	s, err := ByName("gru")
	if err != nil || s.Name != "gru" {
		t.Fatalf("ByName(gru) = %v, %v", s, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("want error for unknown workload")
	}
	cactus, err := BySuite(SuiteCactus)
	if err != nil {
		t.Fatal(err)
	}
	if len(cactus) != 10 {
		t.Fatalf("Cactus has %d workloads, want 10", len(cactus))
	}
	if _, err := BySuite("NoSuchSuite"); err == nil {
		t.Fatal("want error for unknown suite")
	}
	if got := len(Suites()); got != 5 {
		t.Fatalf("Suites = %d, want 5", got)
	}
	if got := len(Names()); got != 40 {
		t.Fatalf("Names = %d, want 40", got)
	}
}

func TestSpecValidateRejections(t *testing.T) {
	base := simple(SuiteParboil, "x", 2, 100, 1)
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"no name", func(s *Spec) { s.Name = "" }},
		{"zero kernels", func(s *Spec) { s.Kernels = 0 }},
		{"fewer invocations than kernels", func(s *Spec) { s.FullInvocations = 1 }},
		{"tier fractions exceed 1", func(s *Spec) { s.Tier1Frac, s.Tier3Frac = 0.7, 0.7 }},
		{"negative tier fraction", func(s *Spec) { s.Tier1Frac = -0.1 }},
		{"inverted CoV range", func(s *Spec) { s.LowVarCoVLo, s.LowVarCoVHi = 0.5, 0.1 }},
		{"negative jitter", func(s *Spec) { s.LocalityJitter = -1 }},
		{"ramp frac out of range", func(s *Spec) { s.RampFrac = 1.5 }},
		{"ramp scale out of range", func(s *Spec) { s.RampFrac = 0.1; s.RampScale = 0 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := base
			c.mutate(&s)
			if err := s.Validate(); err == nil {
				t.Fatal("want validation error")
			}
		})
	}
}

func TestGenerateValidatesInputs(t *testing.T) {
	s, _ := ByName("gru")
	if _, err := Generate(s, 0); err == nil {
		t.Fatal("want error for zero scale")
	}
	if _, err := Generate(s, 1.5); err == nil {
		t.Fatal("want error for scale > 1")
	}
	s.Kernels = 0
	if _, err := Generate(s, 0.1); err == nil {
		t.Fatal("want error for invalid spec")
	}
}

func TestGenerateStructure(t *testing.T) {
	s, _ := ByName("gru")
	w, err := Generate(s, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if w.Name != "gru" || w.Suite != SuiteCactus {
		t.Fatalf("identity = %s/%s", w.Suite, w.Name)
	}
	if w.NumKernels() != s.Kernels {
		t.Fatalf("kernels = %d, want %d", w.NumKernels(), s.Kernels)
	}
	want := int(math.Round(float64(s.FullInvocations) * 0.02))
	if got := w.NumInvocations(); got != want && got != minScaledInvocations {
		t.Fatalf("invocations = %d, want ≈ %d", got, want)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	s, _ := ByName("bert")
	a, err := Generate(s, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(s, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Invocations) != len(b.Invocations) {
		t.Fatal("nondeterministic invocation count")
	}
	for i := range a.Invocations {
		if a.Invocations[i] != b.Invocations[i] {
			t.Fatalf("invocation %d differs between runs", i)
		}
	}
}

func TestGenerateSmallWorkloadsAreFull(t *testing.T) {
	// Workloads smaller than the scaling floor are generated in full even at
	// tiny scales.
	for _, name := range []string{"bfs_ny", "dwt2d", "gst"} {
		s, _ := ByName(name)
		w, err := Generate(s, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		if w.NumInvocations() != s.FullInvocations {
			t.Fatalf("%s: %d invocations, want full %d", name, w.NumInvocations(), s.FullInvocations)
		}
	}
}

func TestTier1KernelsHaveExactlyConstantCounts(t *testing.T) {
	s, _ := ByName("gms") // gms: everything Tier-1/2 with tiny CoV
	w, err := Generate(s, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	byK := w.InvocationsByKernel()
	constantKernels := 0
	for _, idxs := range byK {
		if len(idxs) < 2 {
			continue
		}
		first := w.Invocations[idxs[0]].Chars.InstructionCount
		allEqual := true
		var counts []float64
		for _, i := range idxs {
			ic := w.Invocations[i].Chars.InstructionCount
			counts = append(counts, ic)
			if ic != first {
				allEqual = false
			}
		}
		if allEqual {
			constantKernels++
		} else if cov := stats.CoV(counts); cov > 0.15 {
			t.Fatalf("gms kernel has instruction CoV %g, spec promises < 0.1 range", cov)
		}
	}
	if constantKernels == 0 {
		t.Fatal("gms should have Tier-1 (exactly constant) kernels")
	}
}

func TestGstHasDominantInvocation(t *testing.T) {
	s, _ := ByName("gst")
	w, err := Generate(s, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	model, err := gpu.NewModel(gpu.Ampere())
	if err != nil {
		t.Fatal(err)
	}
	cycles := model.MeasureWorkload(w)
	total := stats.Sum(cycles)
	max := stats.Max(cycles)
	if frac := max / total; frac < 0.5 {
		t.Fatalf("gst dominant invocation holds %.0f%% of cycles, want > 50%%", frac*100)
	}
}

func TestInterleavePreservesKernelOrderAndRoughProgress(t *testing.T) {
	s, _ := ByName("lmc")
	w, err := Generate(s, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	// Per-kernel Seq must increase with global Index (guaranteed by
	// Validate) and early global positions must hold early per-kernel
	// sequence numbers: correlate global fraction vs per-kernel fraction.
	byK := w.InvocationsByKernel()
	n := float64(w.NumInvocations())
	var sumDiff float64
	var cnt int
	for _, idxs := range byK {
		if len(idxs) < 10 {
			continue
		}
		for rank, gi := range idxs {
			globalFrac := float64(gi) / n
			kernelFrac := float64(rank) / float64(len(idxs))
			sumDiff += math.Abs(globalFrac - kernelFrac)
			cnt++
		}
	}
	if cnt == 0 {
		t.Skip("no kernel with enough invocations at this scale")
	}
	if avg := sumDiff / float64(cnt); avg > 0.1 {
		t.Fatalf("interleave not progress-proportional: mean |Δfrac| = %g", avg)
	}
}

func TestGeneratedCharacteristicsConsistent(t *testing.T) {
	s, _ := ByName("rnnt")
	w, err := Generate(s, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Invocations {
		inv := &w.Invocations[i]
		c := &inv.Chars
		if c.CoalescedGlobalLoads > c.ThreadGlobalLoads {
			t.Fatal("coalesced loads cannot exceed thread loads")
		}
		if c.CoalescedGlobalStores > c.ThreadGlobalStores {
			t.Fatal("coalesced stores cannot exceed thread stores")
		}
		if c.ThreadBlocks != float64(inv.Grid.Count()) {
			t.Fatalf("ThreadBlocks %g != grid %d", c.ThreadBlocks, inv.Grid.Count())
		}
		h := &inv.Hidden
		if h.CacheLocality < 0 || h.CacheLocality > 1 || h.RowLocality < 0 || h.RowLocality > 1 {
			t.Fatal("hidden localities out of range")
		}
		if h.BankConflictFactor < 1 {
			t.Fatal("bank conflict factor below 1")
		}
		if h.L2WorkingSet < 0 {
			t.Fatal("negative working set")
		}
	}
}

func TestMLPerfKernelsUseTensorPipes(t *testing.T) {
	s, _ := ByName("resnet50")
	w, err := Generate(s, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	hasTensor := false
	for i := range w.Invocations {
		if w.Invocations[i].Hidden.TensorFraction > 0 {
			hasTensor = true
			break
		}
	}
	if !hasTensor {
		t.Fatal("MLPerf workload has no tensor-pipe kernels")
	}
	// Cactus workloads, by contrast, should not.
	s2, _ := ByName("gms")
	w2, err := Generate(s2, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	for i := range w2.Invocations {
		if w2.Invocations[i].Hidden.TensorFraction > 0 {
			t.Fatal("Cactus workload unexpectedly uses tensor pipes")
		}
	}
}

func TestL2StraddleWorkingSets(t *testing.T) {
	s, _ := ByName("lmc")
	w, err := Generate(s, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	ampL2 := gpu.Ampere().L2Bytes
	turL2 := gpu.Turing().L2Bytes
	straddling := 0
	for i := range w.Invocations {
		ws := w.Invocations[i].Hidden.L2WorkingSet
		if ws > ampL2 && ws < turL2 {
			straddling++
		}
	}
	if straddling == 0 {
		t.Fatal("lmc should have invocations with working sets between the two L2 capacities")
	}
}

func TestZipfCountsInvariants(t *testing.T) {
	rng := newTestRng(7)
	for _, tc := range []struct{ n, total int }{{1, 10}, {5, 5}, {10, 1000}, {74, 5000}} {
		counts := zipfCounts(tc.n, tc.total, 0.8, rng)
		sum := 0
		for _, c := range counts {
			if c < 1 {
				t.Fatalf("kernel with %d invocations", c)
			}
			sum += c
		}
		if sum != tc.total {
			t.Fatalf("zipfCounts(%d, %d) sums to %d", tc.n, tc.total, sum)
		}
	}
}

func TestLogUniformRange(t *testing.T) {
	rng := newTestRng(9)
	for i := 0; i < 1000; i++ {
		v := logUniform(rng, 10, 1000)
		if v < 10 || v > 1000 {
			t.Fatalf("logUniform out of range: %g", v)
		}
	}
}

func TestColdStartAffectsEarlyInvocations(t *testing.T) {
	s, _ := ByName("lgt") // has RampFrac > 0 and ColdScale < 1
	w, err := Generate(s, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	// For non-constant kernels with enough invocations, the first invocation
	// must run with colder hidden cache locality than the kernel's median,
	// and must launch with a non-dominant CTA configuration.
	byK := w.InvocationsByKernel()
	colder, altCTA, checked := 0, 0, 0
	for _, idxs := range byK {
		if len(idxs) < 50 {
			continue
		}
		var locs []float64
		ctaFreq := map[int]int{}
		for _, i := range idxs {
			locs = append(locs, w.Invocations[i].Hidden.CacheLocality)
			ctaFreq[w.Invocations[i].CTASize()]++
		}
		first := &w.Invocations[idxs[0]]
		constant := true
		ref := w.Invocations[idxs[0]].Chars.InstructionCount
		for _, i := range idxs[1:] {
			if w.Invocations[i].Chars.InstructionCount != ref {
				constant = false
				break
			}
		}
		if constant {
			continue // constant kernels have no warm-up by design
		}
		checked++
		if first.Hidden.CacheLocality < stats.Median(locs) {
			colder++
		}
		dominant, best := 0, -1
		for cta, n := range ctaFreq {
			if n > best {
				dominant, best = cta, n
			}
		}
		if first.CTASize() != dominant {
			altCTA++
		}
	}
	if checked == 0 {
		t.Skip("no warm-up kernel at this scale")
	}
	if float64(colder)/float64(checked) < 0.8 {
		t.Fatalf("cold start not visible: only %d/%d kernels start cold", colder, checked)
	}
	if float64(altCTA)/float64(checked) < 0.8 {
		t.Fatalf("warm-up CTA flip not visible: only %d/%d kernels start on alternate CTA", altCTA, checked)
	}
}

// newTestRng mirrors the generator's seeding for helper-level tests.
func newTestRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestFullCatalogGeneratesValidWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("generates all 40 workloads")
	}
	hw, err := gpu.NewModel(gpu.Ampere())
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range Catalog() {
		w, err := Generate(spec, 0.02)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if err := w.Validate(); err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if w.NumKernels() != spec.Kernels {
			t.Fatalf("%s: %d kernels, want %d", spec.Name, w.NumKernels(), spec.Kernels)
		}
		// Every invocation must execute in positive finite time on the
		// golden model.
		for i := range w.Invocations {
			c := hw.Cycles(&w.Invocations[i])
			if c <= 0 || math.IsNaN(c) || math.IsInf(c, 0) {
				t.Fatalf("%s: invocation %d cycles = %g", spec.Name, i, c)
			}
		}
	}
}
