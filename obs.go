package sieve

import (
	"context"

	"github.com/gpusampling/sieve/internal/obs"
)

// Observability. Sieve's compute stack (stratification, KDE splitting, PKS
// k-sweeps, streaming ingestion) is instrumented with nested stage spans that
// activate only when a Collector rides the context:
//
//	col := sieve.NewCollector()
//	ctx := sieve.WithCollector(context.Background(), col)
//	plan, _ := sieve.SampleContext(ctx, rows, sieve.Options{})
//	col.Report().WriteJSON(os.Stdout) // or WriteTrace for chrome://tracing
//
// Without a collector every instrumentation site reduces to one context
// lookup and the emitted plan is byte-identical — a guarantee pinned by
// TestCollectorDoesNotChangePlans.

// Collector gathers stage spans and registry metrics for one or more runs.
type Collector = obs.Collector

// Span is one timed pipeline stage with attributes, counters and children.
// A nil *Span (no collector attached) is valid and all methods are no-ops.
type Span = obs.Span

// Report is a frozen snapshot of collected spans and metrics, exportable as
// JSON (WriteJSON) or Chrome trace_viewer trace events (WriteTrace).
type Report = obs.Report

// SpanReport is one span in a Report's tree.
type SpanReport = obs.SpanReport

// Registry is a concurrency-safe set of named counters and histograms with
// Prometheus text exposition (WritePrometheus).
type Registry = obs.Registry

// Histogram is a lock-free log-bucketed histogram with quantile estimates.
type Histogram = obs.Histogram

// NewCollector returns an empty span/metric collector.
func NewCollector() *Collector { return obs.New() }

// WithCollector attaches a collector to ctx; pipeline stages called with the
// derived context record spans into it. A nil collector returns ctx unchanged.
func WithCollector(ctx context.Context, c *Collector) context.Context {
	return obs.WithCollector(ctx, c)
}

// CollectorFromContext returns the collector attached to ctx, or nil.
func CollectorFromContext(ctx context.Context) *Collector { return obs.FromContext(ctx) }

// StartSpan opens a span named name under the current span (or as a root) if
// ctx carries a collector; otherwise it returns ctx unchanged and a nil span
// whose methods are no-ops. Use it to wrap caller-side stages so they nest
// with Sieve's built-in instrumentation.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return obs.StartSpan(ctx, name)
}
