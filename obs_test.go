package sieve

import (
	"context"
	"encoding/json"
	"math/rand"
	"testing"
)

// synthObsProfile builds a deterministic three-kernel profile covering every
// tier: constant (Tier-1), mildly varying (Tier-2) and bimodal (Tier-3, so
// the KDE splitter actually runs).
func synthObsProfile() []InvocationProfile {
	var rows []InvocationProfile
	rng := rand.New(rand.NewSource(7))
	add := func(kernel string, instr float64, cta int) {
		rows = append(rows, InvocationProfile{
			Kernel: kernel, Index: len(rows), InstructionCount: instr, CTASize: cta,
		})
	}
	for i := 0; i < 40; i++ {
		add("constant", 1000, 128)
	}
	for i := 0; i < 60; i++ {
		add("mild", 5000*(1+0.05*rng.Float64()), 256)
	}
	for i := 0; i < 80; i++ {
		base := 1000.0
		if i%2 == 0 {
			base = 50000
		}
		add("bimodal", base*(1+0.01*rng.Float64()), 64<<(i%2))
	}
	return rows
}

// planJSON serializes the exported plan state for byte comparison.
func planJSON(t *testing.T, p *Plan) []byte {
	t.Helper()
	b, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestCollectorDoesNotChangePlans pins the observability layer's core
// guarantee: attaching a collector must not change a single byte of the
// emitted plan, for every splitter and for both the materializing and the
// streaming samplers (exact and overflowed reservoirs).
func TestCollectorDoesNotChangePlans(t *testing.T) {
	rows := synthObsProfile()
	for _, splitter := range []Splitter{SplitKDE, SplitEqualWidth, SplitGMM} {
		t.Run(splitter.String(), func(t *testing.T) {
			opts := Options{Tier3Splitter: splitter}
			base, err := Sample(rows, opts)
			if err != nil {
				t.Fatal(err)
			}
			ctx := WithCollector(context.Background(), NewCollector())
			observed, err := SampleContext(ctx, rows, opts)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := planJSON(t, observed), planJSON(t, base); string(got) != string(want) {
				t.Fatalf("plan changed under collector:\n%s\nvs\n%s", got, want)
			}
		})
	}
	for _, reservoir := range []int{0, 32} { // exact and overflowed
		base, err := SampleStream(SliceSource(rows), StreamOptions{ReservoirSize: reservoir})
		if err != nil {
			t.Fatal(err)
		}
		ctx := WithCollector(context.Background(), NewCollector())
		observed, err := SampleStreamContext(ctx, SliceSource(rows), StreamOptions{ReservoirSize: reservoir})
		if err != nil {
			t.Fatal(err)
		}
		if got, want := planJSON(t, observed), planJSON(t, base); string(got) != string(want) {
			t.Fatalf("streaming plan (reservoir %d) changed under collector", reservoir)
		}
	}
}

// TestReportCoversPipelineStages runs the samplers and PKS under one
// collector and checks the report carries the stage spans the docs promise:
// core.stratify with a core.kernel child per kernel (tier/strata/CoV attrs),
// a kde.split under the Tier-3 kernel, stream.ingest under
// core.stratify_stream, and a pks.select sweep with per-k children.
func TestReportCoversPipelineStages(t *testing.T) {
	rows := synthObsProfile()
	col := NewCollector()
	ctx := WithCollector(context.Background(), col)

	if _, err := SampleContext(ctx, rows, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := SampleStreamContext(ctx, SliceSource(rows), StreamOptions{}); err != nil {
		t.Fatal(err)
	}
	features := make([][]float64, len(rows))
	golden := make([]float64, len(rows))
	for i, r := range rows {
		features[i] = []float64{r.InstructionCount, float64(r.CTASize)}
		golden[i] = r.InstructionCount
	}
	if _, err := PKSSelectContext(ctx, features, golden, PKSOptions{Seed: 1}); err != nil {
		t.Fatal(err)
	}

	rep := col.Report()
	strat := rep.Find("core.stratify")
	if strat == nil {
		t.Fatal("report missing core.stratify span")
	}
	if strat.Attrs["kernels"] != 3 || strat.Counters["rows"] != int64(len(rows)) {
		t.Fatalf("core.stratify attrs/counters: %v / %v", strat.Attrs, strat.Counters)
	}
	kernels := map[string]*SpanReport{}
	for _, ks := range rep.FindAll("core.kernel") {
		kernels[ks.Attrs["kernel"].(string)] = ks
	}
	for name, tier := range map[string]string{
		"constant": "Tier-1", "mild": "Tier-2", "bimodal": "Tier-3",
	} {
		ks, ok := kernels[name]
		if !ok {
			t.Fatalf("no core.kernel span for %q", name)
		}
		if ks.Attrs["tier"] != tier {
			t.Fatalf("kernel %s tier = %v, want %s", name, ks.Attrs["tier"], tier)
		}
		strata := ks.Attrs["strata"].(int)
		if strata < 1 {
			t.Fatalf("kernel %s strata = %d", name, strata)
		}
		if covs := ks.Attrs["strata_cov"].([]float64); len(covs) != strata {
			t.Fatalf("kernel %s: %d strata but %d per-stratum CoVs", name, strata, len(covs))
		}
	}
	bimodal := kernels["bimodal"]
	foundSplit := false
	for _, c := range bimodal.Children {
		if c.Name == "kde.split" {
			foundSplit = true
		}
	}
	if !foundSplit {
		t.Fatalf("Tier-3 kernel span has no nested kde.split: %+v", bimodal.Children)
	}

	ss := rep.Find("core.stratify_stream")
	if ss == nil {
		t.Fatal("report missing core.stratify_stream span")
	}
	ingestNested := false
	for _, c := range ss.Children {
		if c.Name == "stream.ingest" {
			ingestNested = true
			if c.Counters["rows"] != int64(len(rows)) {
				t.Fatalf("stream.ingest rows = %d", c.Counters["rows"])
			}
		}
	}
	if !ingestNested {
		t.Fatal("stream.ingest not nested under core.stratify_stream")
	}

	sel := rep.Find("pks.select")
	if sel == nil {
		t.Fatal("report missing pks.select span")
	}
	if _, ok := sel.Attrs["chosen_k"].(int); !ok {
		t.Fatalf("pks.select has no chosen_k: %v", sel.Attrs)
	}
	if ks := rep.FindAll("pks.k"); len(ks) != sel.Attrs["max_k"].(int) {
		t.Fatalf("%d pks.k spans for max_k %v", len(ks), sel.Attrs["max_k"])
	}
}
