package sieve

import (
	"reflect"
	"testing"
)

// TestParallelPipelinesMatchSequential drives the public API end to end on
// real generated workloads and asserts that the parallel execution layer
// (kernel fan-out in Sample, the PKS k-sweep) reproduces the sequential
// results byte for byte.
func TestParallelPipelinesMatchSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload pipelines in -short mode")
	}
	hw, err := NewHardware(Ampere())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"lmc", "spt", "dwt2d"} {
		t.Run(name, func(t *testing.T) {
			w, err := GenerateWorkload(name, 0.01)
			if err != nil {
				t.Fatal(err)
			}
			profile, err := ProfileInstructionCounts(w, hw)
			if err != nil {
				t.Fatal(err)
			}
			rows := ProfileRows(profile)
			seq, err := Sample(rows, Options{Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			par, err := Sample(rows, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(seq.Strata, par.Strata) {
				t.Fatal("parallel Sample strata diverge from sequential")
			}
			if seq.TotalInstructions != par.TotalInstructions || seq.TierInvocations != par.TierInvocations {
				t.Fatal("parallel Sample summary diverges from sequential")
			}

			full, err := ProfileFull(w, hw)
			if err != nil {
				t.Fatal(err)
			}
			golden := hw.MeasureWorkload(w)
			features := FeatureRows(full)
			pksSeq, err := PKSSelect(features, golden, PKSOptions{Seed: 1, Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			pksPar, err := PKSSelect(features, golden, PKSOptions{Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(pksSeq, pksPar) {
				t.Fatal("parallel PKSSelect diverges from sequential")
			}
		})
	}
}
