package sieve

import (
	"io"

	"github.com/gpusampling/sieve/internal/profiler"
)

// Profiler collects a per-invocation profile table from a workload running
// on a hardware model.
type Profiler = profiler.Profiler

// ProfileInstructionCounts profiles the workload with the lightweight
// NVBit-style instruction-count profiler — Sieve's input (a single metric
// per invocation, Section III-A).
func ProfileInstructionCounts(w *Workload, hw *Hardware) (*Profile, error) {
	return profiler.NewInstructionCountProfiler().Profile(w, hw)
}

// ProfileFull profiles the workload with the Nsight-style 12-metric
// profiler — PKS's input. It is substantially slower (multiple replay
// passes per invocation), which the profile's WallSeconds records.
func ProfileFull(w *Workload, hw *Hardware) (*Profile, error) {
	return profiler.NewFullProfiler().Profile(w, hw)
}

// ProfileTwoLevel profiles the workload with the two-level scheme Baddouh et
// al. use to curb PKS's profiling cost: full 12-metric profiling for the
// first detailedBatch invocations, then a cheap name-and-launch-dims pass
// whose characteristics are approximated from the detailed batch
// (detailedBatch ≤ 0 selects the default). Cheaper than ProfileFull, but the
// remainder of the table is an approximation.
func ProfileTwoLevel(w *Workload, hw *Hardware, detailedBatch int) (*Profile, error) {
	return profiler.NewTwoLevelProfiler(detailedBatch).Profile(w, hw)
}

// ReadProfileCSV parses a profile previously written with WriteProfileCSV.
func ReadProfileCSV(r io.Reader) (*Profile, error) { return profiler.ReadCSV(r) }

// WriteProfileCSV serializes a profile table as CSV, the interchange format
// between the profiling front-end and the sampling back-ends.
func WriteProfileCSV(p *Profile, w io.Writer) error { return p.WriteCSV(w) }

// FeatureRows converts a full profile into PKS's 12-dimensional feature
// rows, one per invocation in chronological order.
func FeatureRows(p *Profile) [][]float64 {
	out := make([][]float64, len(p.Records))
	for i := range p.Records {
		out[i] = p.Records[i].Chars.Vector()
	}
	return out
}
