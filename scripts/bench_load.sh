#!/usr/bin/env bash
# bench_load.sh — refresh the checked-in BENCH_load.json.
#
# Starts two peered sieved replicas (a real consistent-hash ring, so the run
# exercises proxying, peer cache fills and cross-replica plan GETs), then
# drives them with cmd/sieveload: one zipfian pass and one uniform pass over
# the same catalog, same seed, each against a cold cache (the harness salts
# the plan keys per pass). The cache is deliberately smaller than the
# catalog so the uniform pass thrashes while the zipfian hot set stays
# resident — the contrast the report's cache_hit_rate/hot_rate columns are
# there to show.
#
# Tunables (environment):
#   DURATION  per-pass run length            (default 20s)
#   RAMP      worker ramp schedule           (default 0:4,5s:24)
#   BUDGET    shared concurrency budget      (default 32)
#   CACHE     per-replica plan cache entries (default 12; catalog is 24)
#   SEED      run seed                       (default 1)
#   OUT       report destination             (default BENCH_load.json)
set -euo pipefail
cd "$(dirname "$0")/.."

DURATION=${DURATION:-20s}
RAMP=${RAMP:-0:4,5s:24}
BUDGET=${BUDGET:-32}
CACHE=${CACHE:-12}
SEED=${SEED:-1}
OUT=${OUT:-BENCH_load.json}

BIN=$(mktemp -d)
trap 'rm -rf "$BIN"' EXIT
go build -o "$BIN/sieved" ./cmd/sieved
go build -o "$BIN/sieveload" ./cmd/sieveload

A=http://127.0.0.1:8372
B=http://127.0.0.1:8373
"$BIN/sieved" -addr 127.0.0.1:8372 -self "$A" -peers "$A,$B" -cache "$CACHE" -log-level warn &
PID_A=$!
"$BIN/sieved" -addr 127.0.0.1:8373 -self "$B" -peers "$A,$B" -cache "$CACHE" -log-level warn &
PID_B=$!
trap 'kill "$PID_A" "$PID_B" 2>/dev/null; rm -rf "$BIN"' EXIT

for url in "$A" "$B"; do
  for _ in $(seq 1 50); do
    curl -fsS "$url/healthz" >/dev/null 2>&1 && break
    sleep 0.2
  done
  curl -fsS "$url/healthz" >/dev/null
done

"$BIN/sieveload" \
  -targets "$A,$B" \
  -workloads sample,sample-csv,batch,planfetch \
  -mode closed \
  -duration "$DURATION" \
  -ramp "$RAMP" \
  -budget "$BUDGET" \
  -dist zipfian,uniform \
  -seed "$SEED" \
  -out "$OUT"

echo "load report written to $OUT"
