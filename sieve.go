// Package sieve implements Sieve, the stratified GPU-compute workload
// sampling methodology of Naderan-Tahan, SeyyedAghaei and Eeckhout
// (ISPASS 2023), together with everything needed to reproduce the paper's
// evaluation: the PKS baseline (Baddouh et al., MICRO 2021), a synthetic
// generator for the Parboil/Rodinia/SDK/Cactus/MLPerf workloads of Table I,
// GPU hardware timing models for the RTX 3080 (Ampere) and RTX 2080 Ti
// (Turing), Nsight- and NVBit-style profilers, a SASS-like trace format, and
// a trace-driven cycle-level simulator.
//
// The core workflow mirrors the paper's Fig. 1:
//
//	w, _ := sieve.GenerateWorkload("lmc", 0.05)          // or bring your own profile
//	hw, _ := sieve.NewHardware(sieve.Ampere())
//	profile, _ := sieve.ProfileInstructionCounts(w, hw)  // one metric per invocation
//	plan, _ := sieve.Sample(sieve.ProfileRows(profile), sieve.Options{})
//	pred, _ := plan.Predict(func(i int) (float64, error) {
//	    return hw.Cycles(&w.Invocations[i]), nil         // simulate/measure reps only
//	})
//	fmt.Println(pred.Cycles, pred.IPC)
//
// Sample groups kernel invocations into strata per kernel by instruction-
// count variability (Tier-1 exact, Tier-2 CoV < θ, Tier-3 split by kernel
// density estimation), selects one representative per stratum, and weights it
// by instruction share. Predict combines per-representative IPC with the
// weighted harmonic mean.
package sieve

import (
	"context"

	"github.com/gpusampling/sieve/internal/core"
	"github.com/gpusampling/sieve/internal/profiler"
	"github.com/gpusampling/sieve/internal/sampler"

	// Register the alternate sampling methodologies so Options.Method,
	// SampleMethod and the sieved service can select them by name.
	_ "github.com/gpusampling/sieve/internal/sampler/rss"
	_ "github.com/gpusampling/sieve/internal/sampler/twophase"
)

// Sentinel errors shared by the sampling entry points. They arrive wrapped
// with call-site detail, so resolve them with errors.Is; the sieved service
// maps them onto HTTP status codes (invalid options → 400, empty profile and
// sampled-plan metric requests → 422).
var (
	// ErrInvalidTheta marks a rejected CoV threshold (explicit θ = 0 or θ < 0).
	ErrInvalidTheta = core.ErrInvalidTheta
	// ErrEmptyProfile marks a profile with no invocation rows.
	ErrEmptyProfile = core.ErrEmptyProfile
	// ErrSampledPlan marks an exact-membership metric (Speedup,
	// WeightedCycleCoV) requested on a sampled streaming plan.
	ErrSampledPlan = core.ErrSampledPlan
)

// DefaultTheta is the paper's recommended CoV threshold θ = 0.4.
const DefaultTheta = core.DefaultTheta

// Tier classifies a kernel's instruction-count variability.
type Tier = core.Tier

// Tier values.
const (
	Tier1 = core.Tier1
	Tier2 = core.Tier2
	Tier3 = core.Tier3
)

// SelectionPolicy picks the representative invocation within a stratum.
type SelectionPolicy = core.SelectionPolicy

// Selection policies: the paper's default picks the first-chronological
// invocation with the stratum's dominant CTA size.
const (
	SelectDominantCTAFirst   = core.SelectDominantCTAFirst
	SelectFirstChronological = core.SelectFirstChronological
	SelectMaxCTA             = core.SelectMaxCTA
)

// Splitter chooses the Tier-3 sub-stratification algorithm.
type Splitter = core.Splitter

// Splitters: KDE valley-cutting (the paper's method), equal-width binning
// and EM-fitted Gaussian mixtures (ablation baselines).
const (
	SplitKDE        = core.SplitKDE
	SplitEqualWidth = core.SplitEqualWidth
	SplitGMM        = core.SplitGMM
)

// Options configures Sample. The zero value uses the paper's defaults
// (θ = 0.4, dominant-CTA-first selection, KDE splitting) and stratifies
// kernels in parallel across GOMAXPROCS workers when the profile is large
// enough to amortize the pool (MinParallelWork rows); set Parallelism to 1
// to force sequential execution. Results are byte-identical at any
// parallelism and any work threshold.
type Options = core.Options

// InvocationProfile is one profiled kernel invocation: kernel name,
// chronological index, dynamic instruction count and CTA size — everything
// Sieve needs.
type InvocationProfile = core.InvocationProfile

// Stratum is one group of same-kernel, similar-instruction-count invocations
// with its representative and weight.
type Stratum = core.Stratum

// Plan is a complete sampling plan: the strata, their representatives and
// weights. It is the unit a simulator consumes.
type Plan = core.Result

// Prediction is an application-level performance estimate derived from
// representative cycle counts.
type Prediction = core.Prediction

// CycleSource supplies measured or simulated cycles by invocation index.
type CycleSource = core.CycleSource

// Sample stratifies a profiled workload and selects weighted representative
// invocations (Sections III-B and III-C of the paper). It is SampleContext
// with context.Background().
func Sample(profile []InvocationProfile, opts Options) (*Plan, error) {
	return SampleContext(context.Background(), profile, opts)
}

// SampleContext is Sample with cancellation: the per-kernel stratification
// workers observe ctx between kernels, so a cancelled or timed-out caller
// gets ctx.Err() back promptly and releases its worker slots instead of
// pinning them for the rest of the run. This is the entry point long-lived
// hosts (such as cmd/sieved) should call with a per-request context.
//
// Options.Method dispatches to the named methodology from the sampler
// registry ("sieve"/"" keeps the default path, byte-identical to before the
// registry existed). Method-specific knobs (seeds, pilot fractions,
// resample counts) keep their defaults on this path — use SampleMethod to
// set them, and for methods that need more than instruction-count rows
// (pks needs feature vectors and a golden reference) supply the full
// MethodProfile there.
func SampleContext(ctx context.Context, profile []InvocationProfile, opts Options) (*Plan, error) {
	if m := sampler.Canonical(opts.Method); m != core.MethodSieve {
		return sampler.Run(ctx, m, &MethodProfile{Rows: profile}, MethodOptions{Core: opts})
	}
	return core.StratifyContext(ctx, profile, opts)
}

// Methods lists every registered sampling methodology by name, sorted —
// "sieve" and "pks" plus the strategy packages linked into the binary
// (twophase, rss, and any future registrations).
func Methods() []string { return sampler.Names() }

// MethodProfile is the input a sampling methodology plans from: the
// instruction-count rows every method needs, plus the optional feature
// vectors and golden cycle counts that feature-clustering methods (pks)
// require.
type MethodProfile = sampler.Profile

// MethodOptions carries the methodology knobs: the shared core options plus
// per-strategy parameters (Seed, PilotFraction, Budget, SetSize, Resamples,
// PKS).
type MethodOptions = sampler.Options

// ErrorInterval is a methodology-supplied confidence interval on a plan's
// relative estimation error, attached to plans built by strategies that
// quantify their own uncertainty (rss resampling, twophase pilot variance).
type ErrorInterval = core.ErrorInterval

// SampleMethod builds a sampling plan with the named registered methodology
// ("" selects the default "sieve"). It is SampleMethodContext with
// context.Background().
func SampleMethod(method string, p *MethodProfile, opts MethodOptions) (*Plan, error) {
	return sampler.Run(context.Background(), method, p, opts)
}

// SampleMethodContext is SampleMethod with cancellation, observed between
// strata and resamples.
func SampleMethodContext(ctx context.Context, method string, p *MethodProfile, opts MethodOptions) (*Plan, error) {
	return sampler.Run(ctx, method, p, opts)
}

// TierFractions reports, for each θ, the fraction of invocations classified
// Tier-1/2/3 — the paper's Fig. 2 quantity.
func TierFractions(profile []InvocationProfile, thetas []float64) ([][3]float64, error) {
	return core.TierFractions(profile, thetas)
}

// ErrorBound is a pre-simulation, golden-free heuristic estimate of a plan's
// prediction uncertainty (stratified-sampling theory with instruction-count
// dispersion as the proxy). Obtain one with Plan.EstimateErrorBound.
type ErrorBound = core.ErrorBound

// KernelSummary characterizes one kernel's invocation behaviour.
type KernelSummary = core.KernelSummary

// Characterize summarizes every kernel of a profile at the given θ
// (DefaultTheta if zero), ordered by descending instruction share — the
// workload-analysis side of the Sieve workflow.
func Characterize(profile []InvocationProfile, theta float64) ([]KernelSummary, error) {
	return core.Characterize(profile, theta)
}

// CharacterizeContext is Characterize with cancellation, observed by the
// underlying stratification pass.
func CharacterizeContext(ctx context.Context, profile []InvocationProfile, theta float64) ([]KernelSummary, error) {
	return core.CharacterizeContext(ctx, profile, theta)
}

// ProfileRows converts a profiler table into Sample's input rows.
func ProfileRows(p *Profile) []InvocationProfile {
	out := make([]InvocationProfile, len(p.Records))
	for i, r := range p.Records {
		out[i] = InvocationProfile{
			Kernel:           r.Kernel,
			Index:            r.Index,
			InstructionCount: r.Chars.InstructionCount,
			CTASize:          r.CTASize,
		}
	}
	return out
}

// Profile is a per-invocation profile table (one row per kernel invocation).
type Profile = profiler.Profile

// Record is one profiled invocation row.
type Record = profiler.Record
