package sieve

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// TestEndToEndWorkflow exercises the full public workflow of the package doc:
// generate → profile → sample → predict, validating accuracy against the
// golden full-run measurement.
func TestEndToEndWorkflow(t *testing.T) {
	w, err := GenerateWorkload("lmc", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	hw, err := NewHardware(Ampere())
	if err != nil {
		t.Fatal(err)
	}
	profile, err := ProfileInstructionCounts(w, hw)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Sample(ProfileRows(profile), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumStrata() < w.NumKernels() {
		t.Fatalf("%d strata for %d kernels", plan.NumStrata(), w.NumKernels())
	}
	pred, err := plan.Predict(func(i int) (float64, error) {
		return hw.Cycles(&w.Invocations[i]), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	golden := hw.TotalCycles(w)
	if errFrac := math.Abs(pred.Cycles-golden) / golden; errFrac > 0.05 {
		t.Fatalf("end-to-end error %.2f%% exceeds 5%%", errFrac*100)
	}
	// Speedup: the plan simulates far less than the full run.
	per := hw.MeasureWorkload(w)
	sp, err := plan.Speedup(per)
	if err != nil {
		t.Fatal(err)
	}
	if sp < 10 {
		t.Fatalf("speedup %.1fx implausibly low", sp)
	}
}

func TestPublicWorkloadCatalog(t *testing.T) {
	specs := WorkloadCatalog()
	if len(specs) != 40 {
		t.Fatalf("catalog = %d workloads", len(specs))
	}
	if _, err := WorkloadByName("gst"); err != nil {
		t.Fatal(err)
	}
	cactus, err := WorkloadsBySuite(SuiteCactus)
	if err != nil || len(cactus) != 10 {
		t.Fatalf("cactus = %d, %v", len(cactus), err)
	}
	spec, _ := WorkloadByName("dwt2d")
	w, err := GenerateFromSpec(spec, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if w.NumInvocations() != spec.FullInvocations {
		t.Fatalf("generated %d invocations, want %d", w.NumInvocations(), spec.FullInvocations)
	}
}

func TestPublicProfileCSVRoundTrip(t *testing.T) {
	w, err := GenerateWorkload("histo", 1.0)
	if err != nil {
		t.Fatal(err)
	}
	hw, err := NewHardware(Turing())
	if err != nil {
		t.Fatal(err)
	}
	p, err := ProfileFull(w, hw)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteProfileCSV(p, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadProfileCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != len(p.Records) {
		t.Fatal("CSV round trip lost records")
	}
	rows := FeatureRows(got)
	if len(rows) != len(p.Records) || len(rows[0]) != len(CharacteristicNames()) {
		t.Fatal("feature rows malformed")
	}
}

func TestPublicPKSBaseline(t *testing.T) {
	w, err := GenerateWorkload("gaussian", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	hw, err := NewHardware(Ampere())
	if err != nil {
		t.Fatal(err)
	}
	full, err := ProfileFull(w, hw)
	if err != nil {
		t.Fatal(err)
	}
	golden := hw.MeasureWorkload(w)
	plan, err := PKSSelect(FeatureRows(full), golden, PKSOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if plan.K < 1 || plan.K > 20 {
		t.Fatalf("PKS chose k = %d", plan.K)
	}
	pred, err := plan.PredictCycles(func(i int) (float64, error) { return golden[i], nil })
	if err != nil {
		t.Fatal(err)
	}
	if pred <= 0 {
		t.Fatal("degenerate PKS prediction")
	}
}

func TestPublicTierFractions(t *testing.T) {
	w, err := GenerateWorkload("gms", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	hw, err := NewHardware(Ampere())
	if err != nil {
		t.Fatal(err)
	}
	p, err := ProfileInstructionCounts(w, hw)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := TierFractions(ProfileRows(p), []float64{0.1, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fr {
		if math.Abs(f[0]+f[1]+f[2]-1) > 1e-9 {
			t.Fatalf("fractions %v do not sum to 1", f)
		}
	}
}

// TestTraceAndSimulateRepresentatives exercises the Section V-G workflow via
// the public API: sample, trace only the representatives, simulate them
// serially and in parallel.
func TestTraceAndSimulateRepresentatives(t *testing.T) {
	w, err := GenerateWorkload("mri-g", 1.0)
	if err != nil {
		t.Fatal(err)
	}
	hw, err := NewHardware(Ampere())
	if err != nil {
		t.Fatal(err)
	}
	profile, err := ProfileInstructionCounts(w, hw)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Sample(ProfileRows(profile), Options{})
	if err != nil {
		t.Fatal(err)
	}
	traces, err := GeneratePlanTraces(w, plan, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != plan.NumStrata() {
		t.Fatalf("%d traces for %d strata", len(traces), plan.NumStrata())
	}
	// Round-trip one trace through the text format.
	var buf bytes.Buffer
	if err := WriteTrace(traces[0], &buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTrace(&buf); err != nil {
		t.Fatal(err)
	}
	simulator, err := NewSimulator(Ampere())
	if err != nil {
		t.Fatal(err)
	}
	serial, err := simulator.SimulateAll(traces)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := simulator.SimulateParallel(traces, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i].SMCycles != parallel[i].SMCycles {
			t.Fatal("parallel dispatch changed results")
		}
		if serial[i].Cycles <= 0 {
			t.Fatal("degenerate simulated cycles")
		}
	}
}

func TestOptionsDefaultsMatchPaper(t *testing.T) {
	if DefaultTheta != 0.4 {
		t.Fatalf("default θ = %g, paper uses 0.4", DefaultTheta)
	}
	if len(CharacteristicNames()) != 12 {
		t.Fatal("PKS profiles 12 characteristics")
	}
	if Ampere().Name != "RTX 3080" || Turing().Name != "RTX 2080 Ti" {
		t.Fatal("platform names")
	}
}

func TestResolveArch(t *testing.T) {
	a, err := ResolveArch("ampere")
	if err != nil || a.Name != "RTX 3080" {
		t.Fatalf("ampere: %v %v", a.Name, err)
	}
	tur, err := ResolveArch("turing")
	if err != nil || tur.Name != "RTX 2080 Ti" {
		t.Fatalf("turing: %v %v", tur.Name, err)
	}
	if _, err := ResolveArch("/no/such/file.json"); err == nil {
		t.Fatal("want error for missing file")
	}
	// Round-trip a custom config through a file.
	dir := t.TempDir()
	path := filepath.Join(dir, "custom.json")
	custom := Ampere()
	custom.Name = "prototype"
	custom.SMs = 96
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteArchJSON(custom, f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err := ResolveArch(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != custom {
		t.Fatalf("file round trip changed arch: %+v", got)
	}
}
