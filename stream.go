package sieve

import (
	"context"
	"io"

	"github.com/gpusampling/sieve/internal/core"
	"github.com/gpusampling/sieve/internal/profiler"
)

// StreamOptions configures SampleStream/SampleCSV: the embedded Options plus
// the per-kernel reservoir size, priority-hash seed and dispatch batch size
// that bound the streaming pass. The zero value uses the paper's sampling
// defaults with a 4096-row reservoir per kernel.
type StreamOptions = core.StreamOptions

// RowSource yields profile rows one at a time in strictly ascending Index
// order and returns io.EOF after the last row.
type RowSource = core.RowSource

// SliceSource adapts an in-memory profile into a RowSource, for callers that
// want streaming semantics (or its regression tests) over materialized rows.
func SliceSource(rows []InvocationProfile) RowSource {
	i := 0
	return func() (InvocationProfile, error) {
		if i >= len(rows) {
			return InvocationProfile{}, io.EOF
		}
		r := rows[i]
		i++
		return r, nil
	}
}

// SampleStream is the bounded-memory analogue of Sample: one pass over the
// source feeds per-kernel online accumulators and deterministic seeded
// reservoirs, so memory is O(kernels × ReservoirSize) no matter how many
// invocations stream by. Whenever every kernel fits its reservoir the plan is
// byte-identical to Sample on the same rows, at any Parallelism; otherwise the
// plan is marked Sampled (exact totals and representatives, partial membership
// lists, reservoir-sampled Tier-3 splits). See docs/streaming.md.
func SampleStream(next RowSource, opts StreamOptions) (*Plan, error) {
	return core.StratifyStream(next, opts)
}

// SampleStreamContext is SampleStream with cancellation: the single ingestion
// pass observes ctx between dispatch batches and the stratification phase
// observes it between kernels, so a cancelled or timed-out caller stops the
// stream mid-pass, drains the ingestion shards, and receives ctx.Err().
func SampleStreamContext(ctx context.Context, next RowSource, opts StreamOptions) (*Plan, error) {
	return core.StratifyStreamContext(ctx, next, opts)
}

// SampleCSV streams a profile CSV (the WriteProfileCSV format) straight into
// a sampling plan without materializing the table — the end-to-end
// bounded-memory path for profile logs too large to hold in memory.
func SampleCSV(r io.Reader, opts StreamOptions) (*Plan, error) {
	return SampleCSVContext(context.Background(), r, opts)
}

// SampleCSVContext is SampleCSV with cancellation, observed between
// ingestion batches and kernels exactly as SampleStreamContext.
func SampleCSVContext(ctx context.Context, r io.Reader, opts StreamOptions) (*Plan, error) {
	sc, err := profiler.NewCSVScanner(r)
	if err != nil {
		return nil, err
	}
	return core.StratifyStreamContext(ctx, func() (InvocationProfile, error) {
		if !sc.Next() {
			if err := sc.Err(); err != nil {
				return InvocationProfile{}, err
			}
			return InvocationProfile{}, io.EOF
		}
		rec := sc.Record()
		return InvocationProfile{
			Kernel:           rec.Kernel,
			Index:            rec.Index,
			InstructionCount: rec.Chars.InstructionCount,
			CTASize:          rec.CTASize,
		}, nil
	}, opts)
}
