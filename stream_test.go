package sieve

import (
	"bytes"
	"reflect"
	"testing"
)

// TestSampleStreamMatchesSample drives the public streaming API end to end
// on real generated workloads: whenever every kernel fits its reservoir the
// streamed plan must be byte-identical to Sample's, at any parallelism,
// whether the rows arrive from a slice or straight from a profile CSV.
func TestSampleStreamMatchesSample(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload pipelines in -short mode")
	}
	hw, err := NewHardware(Ampere())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"lmc", "spt", "dwt2d"} {
		t.Run(name, func(t *testing.T) {
			w, err := GenerateWorkload(name, 0.01)
			if err != nil {
				t.Fatal(err)
			}
			profile, err := ProfileInstructionCounts(w, hw)
			if err != nil {
				t.Fatal(err)
			}
			rows := ProfileRows(profile)
			want, err := Sample(rows, Options{})
			if err != nil {
				t.Fatal(err)
			}

			for _, parallelism := range []int{1, 3, 0} {
				opts := StreamOptions{
					Options:       Options{Parallelism: parallelism},
					ReservoirSize: len(rows) + 1, // every kernel fits
				}
				got, err := SampleStream(SliceSource(rows), opts)
				if err != nil {
					t.Fatal(err)
				}
				if got.Sampled {
					t.Fatalf("parallelism %d: plan sampled despite roomy reservoir", parallelism)
				}
				if !reflect.DeepEqual(got.Strata, want.Strata) {
					t.Fatalf("parallelism %d: streamed strata diverge from Sample", parallelism)
				}
				if got.TotalInstructions != want.TotalInstructions || got.TierInvocations != want.TierInvocations {
					t.Fatalf("parallelism %d: streamed summary diverges from Sample", parallelism)
				}
			}

			// The CSV route: WriteProfileCSV → SampleCSV must land on the
			// same plan without materializing the table.
			var buf bytes.Buffer
			if err := WriteProfileCSV(profile, &buf); err != nil {
				t.Fatal(err)
			}
			got, err := SampleCSV(&buf, StreamOptions{ReservoirSize: len(rows) + 1})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Strata, want.Strata) {
				t.Fatal("SampleCSV strata diverge from Sample")
			}

			// Predictions from the streamed plan match the materialized one.
			golden := hw.MeasureWorkload(w)
			src := func(i int) (float64, error) { return golden[i], nil }
			wantPred, err := want.Predict(src)
			if err != nil {
				t.Fatal(err)
			}
			gotPred, err := got.Predict(src)
			if err != nil {
				t.Fatal(err)
			}
			if *wantPred != *gotPred {
				t.Fatalf("streamed prediction %+v, want %+v", gotPred, wantPred)
			}
		})
	}
}

// TestSampleStreamBoundedReservoir squeezes a real workload through a tiny
// reservoir: the plan degrades gracefully (Sampled flag, exact totals and
// tier counts, usable Predict) instead of failing or silently lying.
func TestSampleStreamBoundedReservoir(t *testing.T) {
	hw, err := NewHardware(Ampere())
	if err != nil {
		t.Fatal(err)
	}
	w, err := GenerateWorkload("gru", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	profile, err := ProfileInstructionCounts(w, hw)
	if err != nil {
		t.Fatal(err)
	}
	rows := ProfileRows(profile)
	exact, err := Sample(rows, Options{})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := SampleStream(SliceSource(rows), StreamOptions{ReservoirSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Sampled {
		t.Fatal("an 8-row reservoir must force the sampled fallback")
	}
	if plan.TierInvocations != exact.TierInvocations {
		t.Fatalf("tier counts %v, want exact %v", plan.TierInvocations, exact.TierInvocations)
	}
	rel := (plan.TotalInstructions - exact.TotalInstructions) / exact.TotalInstructions
	if rel < -1e-9 || rel > 1e-9 {
		t.Fatalf("total instructions drifted: %g vs %g", plan.TotalInstructions, exact.TotalInstructions)
	}
	if _, err := plan.Predict(func(i int) (float64, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	golden := hw.MeasureWorkload(w)
	if _, err := plan.Speedup(golden); err == nil {
		t.Fatal("Speedup must refuse a sampled plan")
	}
}
