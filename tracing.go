package sieve

import (
	"fmt"
	"io"

	"github.com/gpusampling/sieve/internal/sim"
	"github.com/gpusampling/sieve/internal/trace"
)

// Trace is the SASS-like dynamic instruction stream of one kernel
// invocation, stored as a plain text file (Section V-G).
type Trace = trace.Trace

// SimResult summarizes one simulated trace.
type SimResult = sim.Result

// Simulator is the trace-driven cycle-level GPU simulator.
type Simulator = sim.Simulator

// GenerateTrace produces the SASS-like trace of one invocation, capped at
// maxWarpInstrs warp instructions (≤ 0 selects the default cap). It stands in
// for the paper's modified Accel-sim/NVBit tracer.
func GenerateTrace(inv *Invocation, maxWarpInstrs int, seed int64) (*Trace, error) {
	return trace.Generate(inv, maxWarpInstrs, seed)
}

// GeneratePlanTraces traces every representative invocation of a sampling
// plan — the paper's workflow of tracing only the selected invocations.
func GeneratePlanTraces(w *Workload, plan *Plan, maxWarpInstrs int, seed int64) ([]*Trace, error) {
	var traces []*Trace
	for _, idx := range plan.RepresentativeIndices() {
		if idx < 0 || idx >= len(w.Invocations) {
			return nil, fmt.Errorf("sieve: representative %d outside workload (%d invocations)", idx, len(w.Invocations))
		}
		tr, err := trace.Generate(&w.Invocations[idx], maxWarpInstrs, seed)
		if err != nil {
			return nil, err
		}
		traces = append(traces, tr)
	}
	return traces, nil
}

// WriteTrace serializes a trace in the plain-text format.
func WriteTrace(t *Trace, w io.Writer) error { return t.Write(w) }

// ReadTrace parses a trace previously written with WriteTrace.
func ReadTrace(r io.Reader) (*Trace, error) { return trace.Read(r) }

// NewSimulator returns a trace-driven simulator for the architecture.
func NewSimulator(arch Arch) (*Simulator, error) { return sim.New(arch) }

// PKPOptions configures Principal Kernel Projection: early simulation exit
// once per-window IPC converges, with the remainder of the invocation
// projected (the intra-invocation sampling technique of Baddouh et al. that
// the paper notes is orthogonal to Sieve).
type PKPOptions = sim.PKPOptions

// PKPResult is a projected simulation outcome, including how much of the
// trace actually ran.
type PKPResult = sim.PKPResult

// MultiSMResult is the outcome of a multi-SM simulation: per-SM finish
// cycles, load imbalance and the executed opcode mix.
type MultiSMResult = sim.MultiSMResult
