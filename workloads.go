package sieve

import (
	"io"

	"github.com/gpusampling/sieve/internal/workloads"
)

// WorkloadSpec is the deterministic generation recipe for one synthetic
// workload of the Table I catalog.
type WorkloadSpec = workloads.Spec

// Suite names of the Table I catalog.
const (
	SuiteParboil = workloads.SuiteParboil
	SuiteRodinia = workloads.SuiteRodinia
	SuiteSDK     = workloads.SuiteSDK
	SuiteCactus  = workloads.SuiteCactus
	SuiteMLPerf  = workloads.SuiteMLPerf
)

// WorkloadCatalog returns the specification of all 40 Table I workloads.
func WorkloadCatalog() []WorkloadSpec { return workloads.Catalog() }

// WorkloadByName returns the catalog spec with the given name.
func WorkloadByName(name string) (WorkloadSpec, error) { return workloads.ByName(name) }

// WorkloadsBySuite returns the catalog specs of one suite.
func WorkloadsBySuite(suite string) ([]WorkloadSpec, error) { return workloads.BySuite(suite) }

// GenerateWorkload synthesizes a catalog workload at the given scale factor
// (0 < scale ≤ 1) of its Table I invocation count. Generation is
// deterministic.
func GenerateWorkload(name string, scale float64) (*Workload, error) {
	spec, err := workloads.ByName(name)
	if err != nil {
		return nil, err
	}
	return workloads.Generate(spec, scale)
}

// GenerateFromSpec synthesizes a workload from a custom specification, so
// downstream users can model their own applications.
func GenerateFromSpec(spec WorkloadSpec, scale float64) (*Workload, error) {
	return workloads.Generate(spec, scale)
}

// ReadWorkloadSpecJSON parses and validates a workload specification from
// JSON (the Spec struct's fields under their Go names).
func ReadWorkloadSpecJSON(r io.Reader) (WorkloadSpec, error) { return workloads.ReadSpec(r) }

// WriteWorkloadSpecJSON serializes a workload specification as JSON.
func WriteWorkloadSpecJSON(s WorkloadSpec, w io.Writer) error { return workloads.WriteSpec(s, w) }
